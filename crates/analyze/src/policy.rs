//! Distribution policies and the parallel-correctness certifier.
//!
//! A *distribution policy* (Ameloot et al., "Parallel-Correctness and
//! Transferability for Conjunctive Queries") assigns every fact of every
//! atom a set of workers. A policy is **parallel-correct** for a
//! conjunctive query when, for every valuation of the query's variables,
//! at least one worker receives *all* the facts the valuation needs —
//! the condition under which "shuffle, then join locally, then union"
//! computes exactly the global join.
//!
//! This module models the engine's three shuffle strategies as explicit
//! [`Policy`] values over a grid of cells and decides parallel
//! correctness *statically*:
//!
//! * Symbolically first: the engine routes facts by hashing variable
//!   values through seeded hash functions ("channels"). Under
//!   hash-generic reasoning — the proof may not assume anything about a
//!   hash function except that equal inputs through equal channels give
//!   equal outputs — a policy is parallel-correct **iff** on every grid
//!   dimension of extent ≥ 2, all atoms pinned to that dimension hash
//!   the *same variable* through the *same channel* (with special rules
//!   for stationary fragments; see [`certify`]). A proof is returned as
//!   a [`Certificate`] listing the per-dimension obligations.
//! * When the symbolic criterion fails, a bounded concrete search over
//!   tiny value domains (using the engine's actual hash functions and
//!   the policy's actual seeds) looks for a **minimal counterexample
//!   valuation** — a concrete assignment whose required facts share no
//!   cell. Found counterexamples are real: replaying the engine's
//!   routing on them drops join results.
//!
//! The analyzer runs [`check`] as a standard pass (silent on correct
//! policies); the engine's `certify` plan option calls [`certify_spec`]
//! to attach the full R420 proof certificate to the run's diagnostics.

use crate::diagnostic::{DiagCode, Diagnostic};
use crate::spec::{PlanSpec, ShuffleKind};
use parjoin_common::hash;
use parjoin_core::hypercube::{AtomShape, HcConfig, ShareProblem};
use parjoin_query::VarId;

/// Identity of a hash function: the concrete seed handed to the engine's
/// hash family. Two pins agree on a hashed coordinate for *every*
/// valuation only when they hash the same variable through the same
/// channel (and the same [`Family`]).
pub type Channel = u64;

/// Which concrete hash family evaluates a pin. The regular shuffle
/// routes through `hash::bucket_row` over a one-value key; the
/// HyperCube shuffle routes each dimension through `hash::bucket`.
/// The two families disagree on the same (value, seed) pair, so the
/// certifier treats them as distinct even on equal channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// The HyperCube per-dimension family (`hash::bucket`).
    Dimension,
    /// The regular shuffle's key-row family (`hash::bucket_row`).
    KeyRow,
}

/// How one atom is routed along one grid dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pin {
    /// Replicated across every coordinate of this dimension.
    Free,
    /// Pinned to the hash bucket of the atom's value for `var`.
    Hash {
        /// The variable whose value is hashed.
        var: VarId,
        /// The seed identifying the hash function.
        channel: Channel,
        /// The concrete hash family.
        family: Family,
    },
    /// Pinned to the bucket of the *empty* key: a per-channel constant
    /// coordinate. This is the degenerate cartesian-step shuffle, which
    /// routes every tuple of both sides to one worker.
    Const {
        /// The seed identifying the hash function.
        channel: Channel,
    },
}

/// How one atom's facts are placed on the grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomRoute {
    /// Routed through the grid: one [`Pin`] per dimension.
    Routed(Vec<Pin>),
    /// Left in its seeded placement: each fact lives on one *arbitrary*
    /// cell the policy does not control (the broadcast plan's
    /// partitioned fragment). Sound only when every other atom reaches
    /// every cell.
    Stationary,
}

/// A distribution policy for one query (or one shuffle round of one):
/// a grid of cells — the cross product of the dimension extents, mapped
/// injectively onto workers — plus a route per atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// Extent (number of coordinates) of each grid dimension.
    pub dims: Vec<usize>,
    /// One route per atom, parallel to the query's atom list.
    pub routes: Vec<AtomRoute>,
    /// Human-readable description, e.g. `"hypercube 2x2x2"`.
    pub label: String,
}

impl Policy {
    /// Number of grid cells (the product of the dimension extents).
    pub fn num_cells(&self) -> usize {
        self.dims.iter().product()
    }

    /// A canonical string describing how atom `i`'s facts are placed.
    /// Two equal signatures denote the *same placement function*: equal
    /// content shuffled under equal signatures lands identically on
    /// every worker. The engine's sort cache uses this to certify
    /// cross-query reuse of shuffled fragments.
    pub fn route_signature(&self, atom: usize) -> String {
        match &self.routes[atom] {
            AtomRoute::Stationary => "stationary".to_string(),
            AtomRoute::Routed(pins) => {
                let parts: Vec<String> = self
                    .dims
                    .iter()
                    .zip(pins)
                    .map(|(&extent, pin)| match pin {
                        Pin::Free => format!("free/{extent}"),
                        Pin::Hash {
                            var,
                            channel,
                            family,
                        } => {
                            format!("h{family:?}(v{},{channel:#x})/{extent}", var.0)
                        }
                        Pin::Const { channel } => format!("const({channel:#x})/{extent}"),
                    })
                    .collect();
                parts.join("|")
            }
        }
    }

    /// Structural validation: every routed atom needs one pin per
    /// dimension, pinned variables must belong to the atom (the engine
    /// computes coordinates from the atom's own columns), and extents
    /// must be positive. Violations are [`DiagCode::PolicyMalformed`].
    pub fn validate(&self, atom_vars: &[Vec<VarId>]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if self.routes.len() != atom_vars.len() {
            out.push(
                Diagnostic::error(
                    DiagCode::PolicyMalformed,
                    "policy routes do not cover the query's atoms",
                )
                .with("routes", self.routes.len())
                .with("atoms", atom_vars.len()),
            );
            return out;
        }
        for (d, &extent) in self.dims.iter().enumerate() {
            if extent == 0 {
                out.push(
                    Diagnostic::error(DiagCode::PolicyMalformed, "zero-extent grid dimension")
                        .with("dim", d),
                );
            }
        }
        for (i, route) in self.routes.iter().enumerate() {
            let AtomRoute::Routed(pins) = route else {
                continue;
            };
            if pins.len() != self.dims.len() {
                out.push(
                    Diagnostic::error(
                        DiagCode::PolicyMalformed,
                        "pin vector length does not match the grid dimensions",
                    )
                    .with("atom", i)
                    .with("pins", pins.len())
                    .with("dims", self.dims.len()),
                );
                continue;
            }
            for (d, pin) in pins.iter().enumerate() {
                if let Pin::Hash { var, .. } = pin {
                    if !atom_vars[i].contains(var) {
                        out.push(
                            Diagnostic::error(
                                DiagCode::PolicyMalformed,
                                "atom pinned on a variable it does not contain",
                            )
                            .with("atom", i)
                            .with("dim", d)
                            .with("var", format!("#{}", var.0)),
                        );
                    }
                }
            }
        }
        out
    }

    /// The concrete per-dimension coordinate of atom `i`'s fact under
    /// `value_of`, or `None` for stationary atoms / free dimensions
    /// (meaning "all coordinates").
    fn coords(&self, atom: usize, value_of: &dyn Fn(VarId) -> u64) -> Option<Vec<Option<usize>>> {
        match &self.routes[atom] {
            AtomRoute::Stationary => None,
            AtomRoute::Routed(pins) => Some(
                self.dims
                    .iter()
                    .zip(pins)
                    .map(|(&extent, pin)| match pin {
                        Pin::Free => None,
                        Pin::Hash {
                            var,
                            channel,
                            family,
                        } => Some(match family {
                            Family::Dimension => hash::bucket(value_of(*var), *channel, extent),
                            Family::KeyRow => hash::bucket_row(&[value_of(*var)], *channel, extent),
                        }),
                        Pin::Const { channel } => Some(hash::bucket_row(&[], *channel, extent)),
                    })
                    .collect(),
            ),
        }
    }
}

/// A parallel-correctness proof: one discharged obligation per grid
/// dimension (plus the stationary-fragment argument when one exists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The policy the proof is about.
    pub policy: String,
    /// Human-readable proof obligations, one line each, in dimension
    /// order.
    pub obligations: Vec<String>,
}

/// A concrete valuation whose required facts share no worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Value assigned to each query variable (ascending variable id).
    pub valuation: Vec<(VarId, u64)>,
    /// Per-atom destination description under the valuation.
    pub atom_dests: Vec<String>,
    /// Which proof obligation failed.
    pub why: String,
}

impl Counterexample {
    /// The valuation as `x=0 y=1 …`, using `names` when provided.
    pub fn valuation_string(&self, names: Option<&[String]>) -> String {
        self.valuation
            .iter()
            .map(|(v, val)| format!("{}={val}", var_label(*v, names)))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Outcome of certifying one (query, policy) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Proved parallel-correct for every valuation and every choice of
    /// hash functions.
    Certified(Certificate),
    /// Proved *not* parallel-correct, with a concrete minimal
    /// counterexample under the engine's actual hash routing.
    Refuted(Counterexample),
    /// The symbolic criterion failed but the bounded concrete search
    /// found no failing valuation (small-domain hash collisions can
    /// mask one). Not certified.
    Unproven {
        /// Which obligation failed symbolically.
        why: String,
    },
    /// The policy is structurally invalid (see [`Policy::validate`]).
    Malformed(Vec<Diagnostic>),
}

impl Verdict {
    /// True for [`Verdict::Certified`].
    pub fn is_certified(&self) -> bool {
        matches!(self, Verdict::Certified(_))
    }
}

fn var_label(v: VarId, names: Option<&[String]>) -> String {
    names
        .and_then(|ns| ns.get(v.index()))
        .filter(|n| !n.is_empty())
        .cloned()
        .unwrap_or_else(|| format!("#{}", v.0))
}

fn pin_label(pin: &Pin, names: Option<&[String]>) -> String {
    match pin {
        Pin::Free => "free".to_string(),
        Pin::Hash { var, channel, .. } => {
            format!("h[{channel:#x}]({})", var_label(*var, names))
        }
        Pin::Const { channel } => format!("const[{channel:#x}]"),
    }
}

/// Decides parallel-correctness of `policy` for a query given as its
/// per-atom variable lists. `names` (indexed by variable id) is used for
/// human-readable obligations and counterexamples.
///
/// The decision is exact under hash-generic semantics:
///
/// * **Stationary fragments.** A stationary atom's fact sits on one
///   arbitrary cell, so with ≥ 2 cells it only ever meets atoms that
///   reach *every* cell; two stationary atoms can always be seeded
///   apart. (A single-cell grid is trivially correct.)
/// * **Routed atoms.** Destination sets are per-dimension products, so
///   the intersection over atoms is non-empty iff it is non-empty on
///   every dimension. On a dimension of extent ≥ 2, pinned coordinates
///   agree for every valuation iff all pins hash the same variable
///   through the same channel and family — the proof obligation the
///   certificate records. Free pins cover all coordinates.
///
/// When an obligation fails, a bounded concrete search (domains of
/// growing size, lexicographic valuations, the policy's actual seeds)
/// looks for a minimal real counterexample; if hash collisions mask
/// every candidate the verdict degrades to [`Verdict::Unproven`].
pub fn certify(atom_vars: &[Vec<VarId>], policy: &Policy, names: Option<&[String]>) -> Verdict {
    let diags = policy.validate(atom_vars);
    if !diags.is_empty() {
        return Verdict::Malformed(diags);
    }
    let cells = policy.num_cells();
    if cells <= 1 {
        return Verdict::Certified(Certificate {
            policy: policy.label.clone(),
            obligations: vec!["single cell: every fact lands on worker 0".to_string()],
        });
    }

    let stationary: Vec<usize> = policy
        .routes
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, AtomRoute::Stationary))
        .map(|(i, _)| i)
        .collect();
    let mut obligations = Vec::new();
    if stationary.len() >= 2 {
        let why = format!(
            "atoms {} and {} are both stationary: their facts can be seeded on \
             different workers",
            stationary[0], stationary[1]
        );
        return Verdict::Refuted(adversarial_counterexample(atom_vars, policy, names, why));
    }
    if let [st] = stationary[..] {
        for (i, route) in policy.routes.iter().enumerate() {
            let AtomRoute::Routed(pins) = route else {
                continue;
            };
            if let Some((d, pin)) = policy
                .dims
                .iter()
                .zip(pins)
                .enumerate()
                .find(|(_, (&extent, pin))| extent >= 2 && !matches!(pin, Pin::Free))
                .map(|(d, (_, pin))| (d, pin))
            {
                let why = format!(
                    "atom {st} is stationary but atom {i} pins dimension {d} \
                     ({}) instead of replicating: the stationary fact can be \
                     seeded on a cell atom {i} never reaches",
                    pin_label(pin, names)
                );
                return Verdict::Refuted(adversarial_counterexample(atom_vars, policy, names, why));
            }
        }
        obligations.push(format!(
            "atom {st} stays in place; every other atom replicates to all {cells} cells"
        ));
        return Verdict::Certified(Certificate {
            policy: policy.label.clone(),
            obligations,
        });
    }

    // All atoms routed: check the per-dimension agreement obligations.
    for (d, &extent) in policy.dims.iter().enumerate() {
        if extent < 2 {
            obligations.push(format!("dim {d}: extent {extent}, trivially agrees"));
            continue;
        }
        let pinned: Vec<(usize, &Pin)> = policy
            .routes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                AtomRoute::Routed(pins) => match &pins[d] {
                    Pin::Free => None,
                    p => Some((i, p)),
                },
                AtomRoute::Stationary => None,
            })
            .collect();
        let Some(&(first_atom, first)) = pinned.first() else {
            obligations.push(format!(
                "dim {d}: unpinned, every atom replicates across its {extent} coordinates"
            ));
            continue;
        };
        if let Some(&(other_atom, other)) = pinned.iter().find(|(_, p)| *p != first) {
            let why = format!(
                "dim {d}: atom {first_atom} routes by {} but atom {other_atom} \
                 routes by {} — their coordinates can disagree",
                pin_label(first, names),
                pin_label(other, names)
            );
            return match find_counterexample(atom_vars, policy, names) {
                Some(mut cex) => {
                    cex.why = why;
                    Verdict::Refuted(cex)
                }
                None => Verdict::Unproven { why },
            };
        }
        obligations.push(format!(
            "dim {d}: atoms {{{}}} all route by {}; the rest replicate",
            pinned
                .iter()
                .map(|(i, _)| i.to_string())
                .collect::<Vec<_>>()
                .join(","),
            pin_label(first, names)
        ));
    }
    Verdict::Certified(Certificate {
        policy: policy.label.clone(),
        obligations,
    })
}

/// Counterexample for stationary-atom failures: the facts' placement is
/// chosen by the *seeding*, not the valuation, so any valuation works —
/// report the all-zeros one with the adversarial-placement argument.
fn adversarial_counterexample(
    atom_vars: &[Vec<VarId>],
    policy: &Policy,
    names: Option<&[String]>,
    why: String,
) -> Counterexample {
    let vars = all_vars(atom_vars);
    let valuation: Vec<(VarId, u64)> = vars.iter().map(|&v| (v, 0)).collect();
    let atom_dests = describe_dests(atom_vars, policy, &|_| 0);
    let _ = names;
    Counterexample {
        valuation,
        atom_dests,
        why,
    }
}

fn all_vars(atom_vars: &[Vec<VarId>]) -> Vec<VarId> {
    let mut vars: Vec<VarId> = Vec::new();
    for avs in atom_vars {
        for &v in avs {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    vars.sort_unstable_by_key(|v| v.0);
    vars
}

fn describe_dests(
    atom_vars: &[Vec<VarId>],
    policy: &Policy,
    value_of: &dyn Fn(VarId) -> u64,
) -> Vec<String> {
    (0..atom_vars.len())
        .map(|i| match policy.coords(i, value_of) {
            None => format!("atom {i}: one arbitrary cell (stationary)"),
            Some(cs) => {
                let coords: Vec<String> = cs
                    .iter()
                    .map(|c| c.map_or_else(|| "*".to_string(), |c| c.to_string()))
                    .collect();
                format!("atom {i}: cells ({})", coords.join(","))
            }
        })
        .collect()
}

/// Iteration budget for the concrete search, counted in valuations.
/// Symbolic failures almost always yield a disagreement within the
/// first few valuations of the first domain; the budget only bounds
/// pathological hash-collision chains.
const SEARCH_BUDGET: usize = 1 << 17;

/// Searches for a concrete valuation whose facts share no cell under
/// the policy's actual routing, growing the value domain `{0..D}` from
/// 2 upward and enumerating valuations lexicographically — the first
/// hit is minimal in (domain size, lexicographic) order.
fn find_counterexample(
    atom_vars: &[Vec<VarId>],
    policy: &Policy,
    names: Option<&[String]>,
) -> Option<Counterexample> {
    let vars = all_vars(atom_vars);
    let n = vars.len();
    if n == 0 {
        return None;
    }
    let mut budget = SEARCH_BUDGET;
    for domain in 2u64..=64 {
        let mut vals = vec![0u64; n];
        loop {
            if budget == 0 {
                return None;
            }
            // Valuations whose values all fit a smaller domain were
            // already enumerated under it — step past without spending
            // budget on a re-test.
            if domain == 2 || vals.contains(&(domain - 1)) {
                budget -= 1;
                let value_of =
                    |v: VarId| vals[vars.iter().position(|&x| x == v).unwrap_or_default()];
                if !colocated(atom_vars, policy, &value_of) {
                    let valuation = vars.iter().copied().zip(vals.iter().copied()).collect();
                    let atom_dests = describe_dests(atom_vars, policy, &value_of);
                    let _ = names;
                    return Some(Counterexample {
                        valuation,
                        atom_dests,
                        why: String::new(),
                    });
                }
            }
            // Odometer step.
            let mut k = n;
            loop {
                if k == 0 {
                    break;
                }
                k -= 1;
                vals[k] += 1;
                if vals[k] < domain {
                    break;
                }
                vals[k] = 0;
            }
            if vals.iter().all(|&v| v == 0) {
                break;
            }
        }
    }
    None
}

/// True when some cell receives every atom's fact under `value_of`.
/// Stationary atoms make this vacuously false unless everything else
/// covers all cells — callers handle those before searching.
fn colocated(atom_vars: &[Vec<VarId>], policy: &Policy, value_of: &dyn Fn(VarId) -> u64) -> bool {
    // The intersection of per-dimension product sets is non-empty iff
    // every dimension's coordinate sets intersect.
    for d in 0..policy.dims.len() {
        let mut fixed: Option<usize> = None;
        for i in 0..atom_vars.len() {
            let Some(cs) = policy.coords(i, value_of) else {
                return false; // stationary: adversarial placement misses
            };
            if let Some(c) = cs[d] {
                match fixed {
                    None => fixed = Some(c),
                    Some(f) if f != c => return false,
                    Some(_) => {}
                }
            }
        }
    }
    true
}

// --- Constructors mirroring the engine's shuffles. -----------------------

/// The policy of one regular-shuffle join step: both sides hash the
/// step's single shuffle key (the engine's `shared.last()`) through the
/// join-key channel onto a 1-dimensional grid of `workers` cells. An
/// empty key (cartesian step) degenerates to a per-channel constant.
pub fn regular_step_policy(key: Option<VarId>, workers: usize, base_seed: u64) -> Policy {
    let pin = match key {
        Some(v) => Pin::Hash {
            var: v,
            channel: hash::key_seed(base_seed, &[u64::from(v.0)]),
            family: Family::KeyRow,
        },
        None => Pin::Const {
            channel: hash::key_seed(base_seed, &[]),
        },
    };
    Policy {
        dims: vec![workers],
        routes: vec![AtomRoute::Routed(vec![pin]); 2],
        label: match key {
            Some(v) => format!("regular: both sides ->h(#{})", v.0),
            None => "regular: cartesian step (single worker)".to_string(),
        },
    }
}

/// The broadcast policy: atom `stationary` keeps its seeded partition,
/// every other atom is replicated to all `workers` cells.
pub fn broadcast_policy(n_atoms: usize, stationary: usize, workers: usize) -> Policy {
    let routes = (0..n_atoms)
        .map(|i| {
            if i == stationary {
                AtomRoute::Stationary
            } else {
                AtomRoute::Routed(vec![Pin::Free])
            }
        })
        .collect();
    Policy {
        dims: vec![workers],
        routes,
        label: format!("broadcast (atom {stationary} stays partitioned)"),
    }
}

/// The HyperCube policy of `config`: one grid dimension per configured
/// variable; an atom pins every dimension whose variable it contains
/// (hashed through that dimension's seed) and replicates across the
/// rest — exactly the engine's `hypercube_via` routing.
pub fn hypercube_policy(atom_vars: &[Vec<VarId>], config: &HcConfig, base_seed: u64) -> Policy {
    let routes = atom_vars
        .iter()
        .map(|avs| {
            AtomRoute::Routed(
                config
                    .vars()
                    .iter()
                    .enumerate()
                    .map(|(d, v)| {
                        if avs.contains(v) {
                            Pin::Hash {
                                var: *v,
                                channel: hash::dimension_seed(base_seed, d),
                                family: Family::Dimension,
                            }
                        } else {
                            Pin::Free
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    Policy {
        dims: config.dims().to_vec(),
        routes,
        label: format!(
            "hypercube {}",
            config
                .dims()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("x")
        ),
    }
}

// --- Spec-level certification. -------------------------------------------

/// One certification unit: a (sub)query given by atom variable lists and
/// the policy of its communication round. Regular plans produce one
/// unit per binary join step; one-round plans produce a single unit.
#[derive(Debug, Clone)]
pub struct Unit {
    /// Human-readable step description.
    pub label: String,
    /// Variable lists of the unit's atoms.
    pub atom_vars: Vec<Vec<VarId>>,
    /// The round's distribution policy.
    pub policy: Policy,
}

/// The full distribution policy of a plan: one [`Unit`] per
/// communication round.
#[derive(Debug, Clone)]
pub struct PlannedPolicy {
    /// Overall policy description.
    pub label: String,
    /// The rounds, in execution order.
    pub units: Vec<Unit>,
}

/// Derives the plan's distribution policy from a [`PlanSpec`], mirroring
/// exactly what the engine executes: the regular plan's per-step shuffle
/// keys (last shared variable of the effective join order), the
/// broadcast plan's largest-cardinality stationary atom, the HyperCube
/// plan's explicit or share-optimized configuration. Returns `None`
/// when the policy is not derivable from the spec alone (a HyperCube
/// plan with neither an explicit config nor cardinalities, an oversized
/// config, or a malformed join order — other passes reject those).
pub fn planned_policy(spec: &PlanSpec<'_>) -> Option<PlannedPolicy> {
    let atom_vars = spec.atom_vars();
    let n = atom_vars.len();
    if n == 0 {
        return None;
    }
    match spec.shuffle {
        ShuffleKind::Regular => {
            let order: Vec<usize> = match &spec.join_order {
                Some(o) => o.clone(),
                None => (0..n).collect(),
            };
            if order.len() != n || order.iter().any(|&i| i >= n) {
                return None;
            }
            let mut units = Vec::new();
            let mut cur: Vec<VarId> = atom_vars[order[0]].clone();
            for (step, &ai) in order[1..].iter().enumerate() {
                let next = &atom_vars[ai];
                let shared: Vec<VarId> = cur.iter().copied().filter(|v| next.contains(v)).collect();
                let key = shared.last().copied();
                units.push(Unit {
                    label: format!(
                        "step {}: join atom {ai} on {}",
                        step + 1,
                        key.map_or_else(|| "<empty key>".to_string(), |v| format!("#{}", v.0))
                    ),
                    atom_vars: vec![cur.clone(), next.clone()],
                    policy: regular_step_policy(key, spec.workers, spec.seed),
                });
                // Mirror the engine's join output schema: left vars,
                // then right-only vars in the right atom's order.
                for &v in next {
                    if !cur.contains(&v) {
                        cur.push(v);
                    }
                }
            }
            Some(PlannedPolicy {
                label: format!("regular ({} step(s))", units.len()),
                units,
            })
        }
        ShuffleKind::Broadcast => {
            // Mirror the engine: the last index of maximal cardinality
            // stays partitioned (`max_by_key` returns the last max).
            let stationary = if spec.cards.len() == n {
                (0..n).max_by_key(|&i| spec.cards[i])?
            } else {
                0
            };
            let policy = broadcast_policy(n, stationary, spec.workers);
            Some(PlannedPolicy {
                label: policy.label.clone(),
                units: vec![Unit {
                    label: "one round".to_string(),
                    atom_vars,
                    policy,
                }],
            })
        }
        ShuffleKind::HyperCube => {
            let config = match &spec.hc_config {
                Some(c) => c.clone(),
                None if spec.cards.len() == n => {
                    let problem = ShareProblem {
                        vars: spec.query.all_vars(),
                        atoms: atom_vars
                            .iter()
                            .zip(&spec.cards)
                            .map(|(vs, &c)| AtomShape {
                                vars: vs.clone(),
                                cardinality: c,
                            })
                            .collect(),
                    };
                    problem.optimize(spec.workers)
                }
                None => return None,
            };
            if config.num_cells() > spec.workers || config.dims().contains(&0) {
                return None;
            }
            let policy = hypercube_policy(&atom_vars, &config, spec.seed);
            Some(PlannedPolicy {
                label: policy.label.clone(),
                units: vec![Unit {
                    label: "one round".to_string(),
                    atom_vars,
                    policy,
                }],
            })
        }
    }
}

fn spec_names(spec: &PlanSpec<'_>) -> Vec<String> {
    (0..spec.query.num_vars())
        .map(|i| spec.var_name(VarId(i as u32)))
        .collect()
}

/// Analyzer pass: derives the plan's policy and emits diagnostics only
/// for *negative* verdicts (counterexample, unproven, malformed) — a
/// certified policy stays silent, so clean plans keep producing zero
/// diagnostics. The engine's own plan shapes always certify; this pass
/// guards future policy constructors and hand-built specs.
pub fn check(spec: &PlanSpec<'_>, out: &mut Vec<Diagnostic>) {
    let Some(planned) = planned_policy(spec) else {
        return;
    };
    let names = spec_names(spec);
    for unit in &planned.units {
        push_negative_verdict(
            certify(&unit.atom_vars, &unit.policy, Some(&names)),
            &unit.label,
            Some(&names),
            out,
        );
    }
}

/// Converts a negative [`Verdict`] into diagnostics; certified verdicts
/// emit nothing. Returns `true` when the verdict was certified.
pub fn push_negative_verdict(
    verdict: Verdict,
    unit_label: &str,
    names: Option<&[String]>,
    out: &mut Vec<Diagnostic>,
) -> bool {
    match verdict {
        Verdict::Certified(_) => true,
        Verdict::Refuted(cex) => {
            let mut d = Diagnostic::error(
                DiagCode::PolicyCounterexample,
                format!(
                    "distribution policy is not parallel-correct: valuation \
                     [{}] places facts on disjoint workers",
                    cex.valuation_string(names)
                ),
            )
            .with("unit", unit_label)
            .with("valuation", cex.valuation_string(names))
            .with("why", &cex.why);
            for dest in &cex.atom_dests {
                d = d.with("dest", dest);
            }
            out.push(d);
            false
        }
        Verdict::Unproven { why } => {
            out.push(
                Diagnostic::warning(
                    DiagCode::PolicyUnproven,
                    "distribution policy failed the symbolic parallel-correctness \
                     criterion and no concrete counterexample was found within the \
                     search budget; the plan is not certified",
                )
                .with("unit", unit_label)
                .with("why", why),
            );
            false
        }
        Verdict::Malformed(diags) => {
            out.extend(diags);
            false
        }
    }
}

/// Explicit certification mode (the engine's `certify` plan option):
/// certifies every unit of the plan's policy and returns either a
/// single [`DiagCode::PolicyCertified`] info diagnostic carrying the
/// proof certificate, or the negative diagnostics. Also returns the
/// derived [`PlannedPolicy`] so the engine can stamp shuffled fragments
/// with their route signatures.
pub fn certify_spec(spec: &PlanSpec<'_>) -> (Option<PlannedPolicy>, Vec<Diagnostic>) {
    let mut out = Vec::new();
    let Some(planned) = planned_policy(spec) else {
        out.push(
            Diagnostic::warning(
                DiagCode::PolicyUnproven,
                "plan policy is not derivable from the spec (missing cardinalities \
                 or configuration); nothing to certify",
            )
            .with("shuffle", format!("{:?}", spec.shuffle)),
        );
        return (None, out);
    };
    let names = spec_names(spec);
    let mut cert = Diagnostic::info(
        DiagCode::PolicyCertified,
        format!(
            "distribution policy is parallel-correct for {} ({})",
            spec.query.name, planned.label
        ),
    )
    .with("policy", &planned.label)
    .with("units", planned.units.len());
    let mut all_certified = true;
    for (k, unit) in planned.units.iter().enumerate() {
        match certify(&unit.atom_vars, &unit.policy, Some(&names)) {
            Verdict::Certified(c) => {
                cert = cert.with(
                    format!("proof[{k}]"),
                    format!("{}: {}", unit.label, c.obligations.join("; ")),
                );
            }
            other => {
                all_certified = false;
                push_negative_verdict(other, &unit.label, Some(&names), &mut out);
            }
        }
    }
    if all_certified {
        out.push(cert);
    }
    (Some(planned), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JoinKind, PlanSpec, ShuffleKind};
    use parjoin_query::{ConjunctiveQuery, QueryBuilder};

    fn triangle() -> ConjunctiveQuery {
        let mut b = QueryBuilder::new("Triangle");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, x]);
        b.build()
    }

    fn triangle_atom_vars() -> Vec<Vec<VarId>> {
        triangle().atoms.iter().map(|a| a.vars()).collect()
    }

    #[test]
    fn hypercube_triangle_certifies() {
        let q = triangle();
        let av = triangle_atom_vars();
        let config = HcConfig::new(q.all_vars(), vec![2, 2, 2]);
        let policy = hypercube_policy(&av, &config, 42);
        let v = certify(&av, &policy, None);
        assert!(v.is_certified(), "expected certificate, got {v:?}");
        let Verdict::Certified(c) = v else {
            unreachable!()
        };
        assert_eq!(c.obligations.len(), 3, "one obligation per dim: {c:?}");
    }

    #[test]
    fn regular_step_certifies() {
        let x = VarId(0);
        let av = vec![vec![VarId(1), x], vec![x, VarId(2)]];
        let policy = regular_step_policy(Some(x), 8, 7);
        assert!(certify(&av, &policy, None).is_certified());
    }

    #[test]
    fn cartesian_step_certifies_on_single_worker_route() {
        let av = vec![vec![VarId(0)], vec![VarId(1)]];
        let policy = regular_step_policy(None, 8, 7);
        assert!(certify(&av, &policy, None).is_certified());
    }

    #[test]
    fn broadcast_certifies() {
        let av = triangle_atom_vars();
        let policy = broadcast_policy(3, 1, 8);
        let v = certify(&av, &policy, None);
        assert!(v.is_certified(), "{v:?}");
    }

    #[test]
    fn two_stationary_atoms_refuted() {
        let av = triangle_atom_vars();
        let mut policy = broadcast_policy(3, 1, 8);
        policy.routes[2] = AtomRoute::Stationary;
        let v = certify(&av, &policy, None);
        assert!(matches!(v, Verdict::Refuted(_)), "{v:?}");
    }

    #[test]
    fn stationary_plus_pinned_refuted() {
        let av = triangle_atom_vars();
        let mut policy = broadcast_policy(3, 1, 8);
        // Atom 0 hash-partitions instead of replicating: the stationary
        // fragment of atom 1 can sit on a cell atom 0 never reaches.
        policy.routes[0] = AtomRoute::Routed(vec![Pin::Hash {
            var: VarId(0),
            channel: 99,
            family: Family::KeyRow,
        }]);
        let v = certify(&av, &policy, None);
        assert!(matches!(v, Verdict::Refuted(_)), "{v:?}");
    }

    #[test]
    fn miswired_channels_yield_concrete_counterexample() {
        // Both sides claim to partition on the shared variable but
        // through different channels — the classic mis-seeded shuffle.
        let x = VarId(0);
        let av = vec![vec![x, VarId(1)], vec![x, VarId(2)]];
        let policy = Policy {
            dims: vec![8],
            routes: vec![
                AtomRoute::Routed(vec![Pin::Hash {
                    var: x,
                    channel: hash::key_seed(1, &[0]),
                    family: Family::KeyRow,
                }]),
                AtomRoute::Routed(vec![Pin::Hash {
                    var: x,
                    channel: hash::key_seed(2, &[0]),
                    family: Family::KeyRow,
                }]),
            ],
            label: "miswired regular".to_string(),
        };
        let v = certify(&av, &policy, None);
        let Verdict::Refuted(cex) = v else {
            panic!("expected a counterexample, got {v:?}");
        };
        // The counterexample must concretely fail under the actual hashes.
        let val = |q: VarId| {
            cex.valuation
                .iter()
                .find(|(v, _)| *v == q)
                .map(|(_, x)| *x)
                .unwrap()
        };
        let a = hash::bucket_row(&[val(x)], hash::key_seed(1, &[0]), 8);
        let b = hash::bucket_row(&[val(x)], hash::key_seed(2, &[0]), 8);
        assert_ne!(a, b, "counterexample does not actually disagree");
    }

    #[test]
    fn mismatched_vars_on_one_dim_refuted_or_unproven() {
        // Two atoms pin the same dimension on *different* variables.
        let av = vec![vec![VarId(0), VarId(1)], vec![VarId(1), VarId(2)]];
        let policy = Policy {
            dims: vec![4],
            routes: vec![
                AtomRoute::Routed(vec![Pin::Hash {
                    var: VarId(0),
                    channel: 7,
                    family: Family::Dimension,
                }]),
                AtomRoute::Routed(vec![Pin::Hash {
                    var: VarId(2),
                    channel: 7,
                    family: Family::Dimension,
                }]),
            ],
            label: "crossed pins".to_string(),
        };
        match certify(&av, &policy, None) {
            Verdict::Refuted(_) | Verdict::Unproven { .. } => {}
            v => panic!("must not certify: {v:?}"),
        }
    }

    #[test]
    fn family_mismatch_is_not_certified() {
        // Same variable, same channel, different hash family: the two
        // concrete hash functions disagree, so no certificate.
        let x = VarId(0);
        let av = vec![vec![x], vec![x]];
        let policy = Policy {
            dims: vec![8],
            routes: vec![
                AtomRoute::Routed(vec![Pin::Hash {
                    var: x,
                    channel: 7,
                    family: Family::Dimension,
                }]),
                AtomRoute::Routed(vec![Pin::Hash {
                    var: x,
                    channel: 7,
                    family: Family::KeyRow,
                }]),
            ],
            label: "family mismatch".to_string(),
        };
        match certify(&av, &policy, None) {
            Verdict::Refuted(_) | Verdict::Unproven { .. } => {}
            v => panic!("must not certify: {v:?}"),
        }
    }

    #[test]
    fn malformed_pin_reports_r423() {
        let av = vec![vec![VarId(0)], vec![VarId(1)]];
        let policy = Policy {
            dims: vec![4],
            routes: vec![
                AtomRoute::Routed(vec![Pin::Hash {
                    var: VarId(1), // not in atom 0
                    channel: 7,
                    family: Family::Dimension,
                }]),
                AtomRoute::Routed(vec![Pin::Free]),
            ],
            label: "bad pin".to_string(),
        };
        let Verdict::Malformed(diags) = certify(&av, &policy, None) else {
            panic!("expected malformed");
        };
        assert!(diags.iter().all(|d| d.code == DiagCode::PolicyMalformed));
    }

    #[test]
    fn single_cell_grid_trivially_certifies() {
        let av = triangle_atom_vars();
        let policy = Policy {
            dims: vec![1],
            routes: vec![AtomRoute::Routed(vec![Pin::Free]); 3],
            label: "one worker".to_string(),
        };
        assert!(certify(&av, &policy, None).is_certified());
    }

    #[test]
    fn planned_policy_mirrors_all_three_shuffles() {
        let q = triangle();
        let reg = PlanSpec::new(&q, 8, ShuffleKind::Regular, JoinKind::Hash);
        let p = planned_policy(&reg).expect("regular derivable");
        assert_eq!(p.units.len(), 2, "two binary steps");
        let br = PlanSpec::new(&q, 8, ShuffleKind::Broadcast, JoinKind::Hash)
            .with_cards(vec![100, 300, 200]);
        let p = planned_policy(&br).expect("broadcast derivable");
        assert!(matches!(p.units[0].policy.routes[1], AtomRoute::Stationary));
        let hc = PlanSpec::new(&q, 8, ShuffleKind::HyperCube, JoinKind::Hash)
            .with_cards(vec![100, 100, 100]);
        assert!(planned_policy(&hc).is_some(), "share-optimized derivable");
    }

    #[test]
    fn certify_spec_emits_r420_for_all_shuffles() {
        let q = triangle();
        for shuffle in [
            ShuffleKind::Regular,
            ShuffleKind::Broadcast,
            ShuffleKind::HyperCube,
        ] {
            let spec = PlanSpec::new(&q, 8, shuffle, JoinKind::Hash)
                .with_cards(vec![100, 100, 100])
                .with_seed(1234);
            let (planned, diags) = certify_spec(&spec);
            assert!(planned.is_some());
            assert_eq!(diags.len(), 1, "{shuffle:?}: {diags:?}");
            assert_eq!(diags[0].code, DiagCode::PolicyCertified);
            assert_eq!(diags[0].code.code(), "R420");
        }
    }

    #[test]
    fn route_signature_distinguishes_placements() {
        let q = triangle();
        let av = triangle_atom_vars();
        let config = HcConfig::new(q.all_vars(), vec![2, 2, 2]);
        let a = hypercube_policy(&av, &config, 42);
        let b = hypercube_policy(&av, &config, 43);
        assert_eq!(a.route_signature(0), a.route_signature(0));
        assert_ne!(
            a.route_signature(0),
            b.route_signature(0),
            "different seeds are different placements"
        );
        assert_ne!(
            a.route_signature(0),
            a.route_signature(1),
            "different pin sets are different placements"
        );
    }
}
