//! The individual analysis passes.
//!
//! Each pass takes a [`PlanSpec`] and appends [`Diagnostic`]s; the
//! passes are independent so callers can run a subset. [`crate::analyze`]
//! runs them all in a fixed order (query shape first, so downstream
//! passes can assume a structurally sane query when it reports clean).

use crate::diagnostic::{DiagCode, Diagnostic};
use crate::spec::{JoinKind, PlanSpec, ShuffleKind};
use parjoin_core::hypercube::ShareProblem;
use parjoin_query::VarId;
use std::collections::HashSet;

/// Well-formedness of the query itself: every head variable and filter
/// variable must be bindable by some atom, variable ids must be in
/// range, and a disconnected hypergraph is flagged (every join order
/// over it contains a cartesian step).
pub fn check_query(spec: &PlanSpec<'_>, out: &mut Vec<Diagnostic>) {
    let q = spec.query;
    let before = out.len();

    if q.atoms.is_empty() {
        out.push(
            Diagnostic::error(DiagCode::QueryMalformed, "query has no body atoms")
                .with("query", &q.name),
        );
        return;
    }

    let num_vars = q.num_vars();
    let atom_vars = spec.atom_vars();
    let in_some_atom = |v: VarId| atom_vars.iter().any(|vars| vars.contains(&v));

    for (i, vars) in atom_vars.iter().enumerate() {
        for &v in vars {
            if v.index() >= num_vars {
                out.push(
                    Diagnostic::error(DiagCode::QueryMalformed, "variable id out of range")
                        .with("atom", i)
                        .with("var", v.0)
                        .with("num_vars", num_vars),
                );
            }
        }
    }

    for &v in &q.head {
        if !in_some_atom(v) {
            out.push(
                Diagnostic::error(
                    DiagCode::HeadVarUnbound,
                    format!("head variable {} occurs in no body atom", spec.var_name(v)),
                )
                .with("var", v.0),
            );
        }
    }

    for (i, f) in q.filters.iter().enumerate() {
        for v in f.vars() {
            if !in_some_atom(v) {
                out.push(
                    Diagnostic::error(
                        DiagCode::FilterVarUnbound,
                        format!(
                            "filter #{i} uses variable {} which occurs in no body atom",
                            spec.var_name(v)
                        ),
                    )
                    .with("filter", i)
                    .with("var", v.0),
                );
            }
        }
    }

    // A catch-all for structural defects the specific checks above do
    // not classify (e.g. an atom with no terms).
    if out.len() == before {
        if let Err(msg) = q.validate() {
            out.push(Diagnostic::error(DiagCode::QueryMalformed, msg).with("query", &q.name));
        }
    }

    if components(&atom_vars) > 1 {
        out.push(
            Diagnostic::warning(
                DiagCode::QueryDisconnected,
                "query hypergraph is disconnected; every join order contains a cartesian \
                 product step",
            )
            .with("components", components(&atom_vars)),
        );
    }
}

/// Number of connected components of the atom hypergraph (atoms are
/// nodes, shared variables are edges).
fn components(atom_vars: &[Vec<VarId>]) -> usize {
    let n = atom_vars.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            if atom_vars[i].iter().any(|v| atom_vars[j].contains(v)) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                parent[a] = b;
            }
        }
    }
    (0..n).filter(|&i| find(&mut parent, i) == i).count()
}

/// Validity of an explicit join order: it must be a permutation of the
/// atom indices; disconnected prefixes and filters that never become
/// bindable are flagged.
pub fn check_join_order(spec: &PlanSpec<'_>, out: &mut Vec<Diagnostic>) {
    let Some(order) = &spec.join_order else {
        return;
    };
    let n = spec.query.atoms.len();
    let atom_vars = spec.atom_vars();

    let mut seen = vec![false; n];
    let mut valid = order.len() == n;
    if order.len() != n {
        out.push(
            Diagnostic::error(
                DiagCode::JoinOrderNotPermutation,
                "join_order must list every atom exactly once",
            )
            .with("expected_len", n)
            .with("got_len", order.len()),
        );
    }
    for &idx in order {
        if idx >= n {
            valid = false;
            out.push(
                Diagnostic::error(
                    DiagCode::JoinOrderNotPermutation,
                    "join_order index out of range",
                )
                .with("index", idx)
                .with("num_atoms", n),
            );
        } else if std::mem::replace(&mut seen[idx], true) {
            valid = false;
            out.push(
                Diagnostic::error(
                    DiagCode::JoinOrderNotPermutation,
                    "join_order lists an atom twice",
                )
                .with("index", idx),
            );
        }
    }

    // Walk the order (its in-range entries, so partial orders still get
    // prefix/filter feedback) tracking the bound variable set.
    let mut bound: HashSet<VarId> = HashSet::new();
    for (step, &idx) in order.iter().filter(|&&i| i < n).enumerate() {
        let vars = &atom_vars[idx];
        if step > 0 && valid && !vars.iter().any(|v| bound.contains(v)) {
            let mut d = Diagnostic::warning(
                DiagCode::JoinOrderCartesianStep,
                format!(
                    "step {step} of the join order shares no variable with the atoms before \
                     it: the join degenerates to a cartesian product"
                ),
            )
            .with("step", step)
            .with("atom", idx)
            .with("relation", &spec.query.atoms[idx].relation);
            if spec.shuffle == ShuffleKind::Regular {
                d = d.with(
                    "note",
                    "the shuffle key for this step is empty, routing all tuples to one worker",
                );
            }
            out.push(d);
        }
        bound.extend(vars.iter().copied());
    }

    // A filter whose variables never all become bound would be silently
    // dropped by the executor (formerly only a debug_assert).
    for (i, f) in spec.query.filters.iter().enumerate() {
        let fvars = f.vars();
        let in_atoms = fvars
            .iter()
            .all(|v| atom_vars.iter().any(|vars| vars.contains(v)));
        if in_atoms && !fvars.iter().all(|v| bound.contains(v)) {
            out.push(
                Diagnostic::error(
                    DiagCode::FilterNeverApplied,
                    format!("filter #{i} never becomes fully bound under this join order"),
                )
                .with("filter", i)
                .with(
                    "unbound",
                    fvars
                        .iter()
                        .filter(|v| !bound.contains(v))
                        .map(|&v| spec.var_name(v))
                        .collect::<Vec<_>>()
                        .join(","),
                ),
            );
        }
    }
}

/// Validity of an explicit Tributary variable order: it must cover every
/// variable of every atom exactly once, mention only query variables,
/// and connected prefixes are preferred (a disconnected next variable
/// expands a cross product in the trie).
pub fn check_tj_order(spec: &PlanSpec<'_>, out: &mut Vec<Diagnostic>) {
    if spec.join != JoinKind::Tributary {
        return;
    }
    let Some(order) = &spec.tj_order else { return };
    let atom_vars = spec.atom_vars();

    let mut seen: HashSet<VarId> = HashSet::new();
    for &v in order {
        if !seen.insert(v) {
            out.push(
                Diagnostic::error(
                    DiagCode::TjOrderDuplicate,
                    format!("tj_order lists variable {} twice", spec.var_name(v)),
                )
                .with("var", v.0),
            );
        }
        if !atom_vars.iter().any(|vars| vars.contains(&v)) {
            out.push(
                Diagnostic::error(
                    DiagCode::TjOrderUnknownVar,
                    format!(
                        "tj_order variable {} is contained in no atom",
                        spec.var_name(v)
                    ),
                )
                .with("var", v.0),
            );
        }
    }

    for (i, vars) in atom_vars.iter().enumerate() {
        for &v in vars {
            if !order.contains(&v) {
                out.push(
                    Diagnostic::error(
                        DiagCode::TjOrderIncomplete,
                        format!(
                            "tj_order omits variable {} of atom {i}; its columns cannot be \
                             sorted into the global order",
                            spec.var_name(v)
                        ),
                    )
                    .with("atom", i)
                    .with("relation", &spec.query.atoms[i].relation)
                    .with("var", v.0),
                );
            }
        }
    }

    // Connectivity of prefixes: variable at depth d should share an atom
    // with some earlier variable, otherwise the trie join enumerates the
    // cross product of the two groups.
    for (depth, &v) in order.iter().enumerate().skip(1) {
        let prefix = &order[..depth];
        let connected = atom_vars
            .iter()
            .any(|vars| vars.contains(&v) && vars.iter().any(|u| prefix.contains(u)));
        if !connected && atom_vars.iter().any(|vars| vars.contains(&v)) {
            out.push(
                Diagnostic::warning(
                    DiagCode::TjOrderDisconnectedPrefix,
                    format!(
                        "tj_order variable {} (depth {depth}) shares no atom with any \
                         earlier variable; the trie join expands a cross product here",
                        spec.var_name(v)
                    ),
                )
                .with("var", v.0)
                .with("depth", depth),
            );
        }
    }
}

/// Parallel-correctness of the shuffle policy.
///
/// The HyperCube shuffle replicates every atom across the dimensions of
/// variables the atom does not contain, so any configuration whose
/// cells fit the cluster co-locates all potential join results
/// (parallel-correct in the sense of Ameloot et al.). What *can* go
/// wrong statically: more cells than workers (unexecutable), a
/// dimension on a variable no atom contains (every join result is
/// emitted once per coordinate of that dimension — duplicated output),
/// join variables left undimensioned (pure replication — correct but
/// wasteful), and a broadcast plan that ships more tuples than it keeps
/// partitioned.
pub fn check_shuffle(spec: &PlanSpec<'_>, out: &mut Vec<Diagnostic>) {
    match spec.shuffle {
        ShuffleKind::Regular => {
            // Pairwise hashing both sides on the shared key is correct by
            // construction; degenerate (empty) keys are reported by
            // `check_join_order` / `check_query`.
        }
        ShuffleKind::Broadcast => {
            if spec.cards.len() == spec.query.atoms.len() && !spec.cards.is_empty() {
                let total: u64 = spec.cards.iter().sum();
                let largest = *spec.cards.iter().max().unwrap_or(&0);
                let shipped = total - largest;
                if shipped > largest {
                    out.push(
                        Diagnostic::warning(
                            DiagCode::BroadcastDominated,
                            "broadcast ships more tuples than it keeps partitioned; a \
                             partitioned (regular or hypercube) shuffle would move less data",
                        )
                        .with("broadcast_tuples", shipped)
                        .with("partitioned_tuples", largest),
                    );
                }
            }
        }
        ShuffleKind::HyperCube => {
            let Some(config) = &spec.hc_config else {
                // The optimizer always returns a feasible configuration.
                return;
            };
            for (&v, &d) in config.vars().iter().zip(config.dims()) {
                if d == 0 {
                    out.push(
                        Diagnostic::error(
                            DiagCode::HcConfigZeroDim,
                            format!("hypercube dimension for {} is zero", spec.var_name(v)),
                        )
                        .with("var", v.0),
                    );
                }
            }
            let cells = config.num_cells();
            if cells > spec.workers {
                out.push(
                    Diagnostic::error(
                        DiagCode::HcConfigOversized,
                        format!("hypercube configuration {config} has more cells than workers"),
                    )
                    .with("cells", cells)
                    .with("workers", spec.workers),
                );
            } else if spec.workers >= 2 && cells * 2 <= spec.workers {
                out.push(
                    Diagnostic::warning(
                        DiagCode::HcConfigUnderutilized,
                        format!("hypercube configuration {config} uses under half the cluster"),
                    )
                    .with("cells", cells)
                    .with("workers", spec.workers),
                );
            }

            let all_vars = spec.query.all_vars();
            for &v in config.vars() {
                if !all_vars.contains(&v) {
                    out.push(
                        Diagnostic::error(
                            DiagCode::HcConfigUnknownVar,
                            format!(
                                "hypercube dimension assigned to variable {} which no atom \
                                 contains; every atom replicates across it and every join \
                                 result is emitted once per coordinate (duplicated output)",
                                spec.var_name(v)
                            ),
                        )
                        .with("var", v.0),
                    );
                }
            }
            for v in spec.query.join_vars() {
                if config.dim_of(v).is_none() {
                    out.push(
                        Diagnostic::warning(
                            DiagCode::HcConfigMissingJoinVar,
                            format!(
                                "join variable {} received no hypercube dimension; atoms \
                                 containing it are replicated instead of hash-partitioned",
                                spec.var_name(v)
                            ),
                        )
                        .with("var", v.0),
                    );
                }
            }
        }
    }
}

/// Resource pre-flight: predicts the per-worker input load of the
/// shuffle and warns when it already exceeds the memory budget, before
/// any tuple moves. The run itself still enforces the budget exactly;
/// this pass only converts a guaranteed mid-flight abort into an
/// upfront warning.
pub fn check_resources(spec: &PlanSpec<'_>, out: &mut Vec<Diagnostic>) {
    let Some(budget) = spec.memory_budget else {
        return;
    };
    if spec.cards.len() != spec.query.atoms.len() || spec.cards.is_empty() {
        return;
    }
    let workers = spec.workers.max(1) as f64;

    let (estimate, kind) = match spec.shuffle {
        ShuffleKind::Regular => {
            // Inputs-only lower bound: the largest relation hash-partitions
            // across the cluster; intermediate results only add to this.
            let largest = *spec.cards.iter().max().unwrap_or(&0);
            (largest as f64 / workers, "regular (input lower bound)")
        }
        ShuffleKind::Broadcast => {
            let total: u64 = spec.cards.iter().sum();
            let largest = *spec.cards.iter().max().unwrap_or(&0);
            (
                (total - largest) as f64 + largest as f64 / workers,
                "broadcast",
            )
        }
        ShuffleKind::HyperCube => {
            let problem = ShareProblem::from_query(spec.query, &spec.cards);
            let config = match &spec.hc_config {
                Some(c) => c.clone(),
                None if spec.workers >= 2 => problem.optimize(spec.workers),
                None => return,
            };
            if config.num_cells() > spec.workers {
                // Unexecutable anyway; `check_shuffle` reported the error.
                return;
            }
            (config.workload(&problem), "hypercube workload")
        }
    };

    if estimate > budget as f64 {
        out.push(
            Diagnostic::warning(
                DiagCode::MemoryPreflight,
                format!(
                    "predicted per-worker load exceeds the memory budget; the run is \
                     expected to abort with a MemoryBudget error ({kind} estimate)"
                ),
            )
            .with("estimated_tuples", format!("{estimate:.0}"))
            .with("budget", budget),
        );
    }
}

/// Sort-cache pre-flight for Tributary plans: estimates the per-worker
/// *sorted working set* of the prepare phase — every atom's post-shuffle
/// fragment plus its sorted copy, i.e. twice the shuffled input — and
/// warns when it exceeds the memory budget. Unlike
/// [`check_resources`]'s general load estimate, this targets the sort
/// pipeline specifically: over budget, the engine's sorted-view cache
/// refuses to pin any view of this plan (caching degrades to
/// sort-every-time) and the prepare itself is the likely point of a
/// mid-flight `MemoryBudget` abort.
pub fn check_sort_cache(spec: &PlanSpec<'_>, out: &mut Vec<Diagnostic>) {
    if spec.join != JoinKind::Tributary {
        return;
    }
    let Some(budget) = spec.memory_budget else {
        return;
    };
    if spec.cards.len() != spec.query.atoms.len() || spec.cards.is_empty() {
        return;
    }
    let workers = spec.workers.max(1) as f64;

    // Per-worker tuples arriving at the prepare phase, by shuffle kind.
    let (input, kind) = match spec.shuffle {
        ShuffleKind::Regular => {
            // RS_TJ merge-joins pairwise; the largest single step sorts
            // its two fragments — inputs-only lower bound.
            let largest = *spec.cards.iter().max().unwrap_or(&0);
            (largest as f64 / workers, "regular (input lower bound)")
        }
        ShuffleKind::Broadcast => {
            let total: u64 = spec.cards.iter().sum();
            let largest = *spec.cards.iter().max().unwrap_or(&0);
            (
                (total - largest) as f64 + largest as f64 / workers,
                "broadcast",
            )
        }
        ShuffleKind::HyperCube => {
            let problem = ShareProblem::from_query(spec.query, &spec.cards);
            let config = match &spec.hc_config {
                Some(c) => c.clone(),
                None if spec.workers >= 2 => problem.optimize(spec.workers),
                None => return,
            };
            if config.num_cells() > spec.workers {
                return; // unexecutable; check_shuffle reported the error
            }
            (config.workload(&problem), "hypercube workload")
        }
    };
    let working_set = 2.0 * input; // fragment + sorted copy per atom

    if working_set > budget as f64 {
        out.push(
            Diagnostic::warning(
                DiagCode::SortCacheOverBudget,
                format!(
                    "projected sorted working set of the Tributary prepare phase exceeds \
                     the per-worker memory budget; sorted views of this plan will not be \
                     cached and the prepare is likely to abort ({kind} estimate)"
                ),
            )
            .with("working_set_tuples", format!("{working_set:.0}"))
            .with("budget", budget),
        );
    }
}

/// The worst-case encoded size of one full shuffle batch under `spec`'s
/// wire format: the widest atom's arity decides the payload, and the
/// estimate uses the **same** [`parjoin_common::wire`] arithmetic the
/// exchange's send path uses ([`parjoin_common::wire::frame_bytes`]), so
/// estimate and actual agree exactly for full batches (the regression
/// suite pins them within 10% end-to-end, partial final batches
/// included). Compression can only shrink a frame below this, never
/// grow it — the raw-payload fallback bounds every compressed frame.
pub fn estimated_frame_bytes(spec: &PlanSpec<'_>, batch: u64) -> u64 {
    let max_arity = spec.atom_vars().iter().map(Vec::len).max().unwrap_or(0);
    parjoin_common::wire::frame_bytes(spec.wire_format, max_arity, batch as usize)
}

/// Runtime-knob pre-flight: vets the streaming-shuffle batch size before
/// the exchange starts. A zero batch can never flush (the send loop
/// would buffer forever), so it is an error; a batch larger than the
/// per-worker memory budget is legal but self-defeating — one arriving
/// batch already overruns the budget the run enforces — so it warns
/// (R411, with the frame's estimated on-wire size attached). A batch
/// whose estimated frame exceeds the transport's per-frame byte limit
/// warns too (R414): the exchange would reject the very first full
/// batch with `FrameTooLarge` instead of shuffling anything.
pub fn check_runtime(spec: &PlanSpec<'_>, out: &mut Vec<Diagnostic>) {
    let Some(batch) = spec.batch_tuples else {
        return;
    };
    if batch == 0 {
        out.push(Diagnostic::error(
            DiagCode::BatchSizeZero,
            "streaming shuffle batch size is zero; a zero-row batch can never flush",
        ));
        return;
    }
    let frame = estimated_frame_bytes(spec, batch);
    if let Some(budget) = spec.memory_budget {
        if batch > budget {
            out.push(
                Diagnostic::warning(
                    DiagCode::BatchOverBudget,
                    "one shuffle batch holds more tuples than the per-worker memory \
                     budget; a single arriving batch already exceeds the budget",
                )
                .with("batch_tuples", batch)
                .with("frame_bytes", frame)
                .with("budget", budget),
            );
        }
    }
    if let Some(limit) = spec.max_frame_bytes {
        if frame > limit {
            out.push(
                Diagnostic::warning(
                    DiagCode::FrameOverLimit,
                    format!(
                        "a full {batch}-row batch of the widest atom encodes to \
                         {frame} bytes, above the transport's {limit}-byte frame \
                         limit; the exchange would reject it with FrameTooLarge — \
                         lower batch_tuples or raise max_frame_bytes"
                    ),
                )
                .with("batch_tuples", batch)
                .with("frame_bytes", frame)
                .with("max_frame_bytes", limit),
            );
        }
    }
}

/// Intra-worker parallelism pre-flight: each simulated worker's prepare
/// sorts and probe morsels share a thread pool of
/// `host_cores / workers` OS threads, so simulating at least as many
/// workers as the host has cores silently degrades both phases to one
/// thread per worker. That is correct but surprising in speedup
/// experiments, so it warns with the effective per-worker thread count.
pub fn check_probe_parallelism(spec: &PlanSpec<'_>, out: &mut Vec<Diagnostic>) {
    let Some(host) = spec.host_cores else {
        return;
    };
    if spec.workers >= host {
        let per = parjoin_common::threads::per_worker_threads(spec.workers, Some(host));
        out.push(
            Diagnostic::warning(
                DiagCode::ProbeParallelismDegraded,
                format!(
                    "{} workers on a {host}-core host: intra-worker prepare/probe \
                     parallelism degrades to {per} thread(s) per worker",
                    spec.workers
                ),
            )
            .with("workers", spec.workers)
            .with("host_cores", host)
            .with("per_worker_threads", per),
        );
    }
}
