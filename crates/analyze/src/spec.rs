//! The analyzer's view of a plan.
//!
//! [`PlanSpec`] mirrors the tuple the engine's `run_config` receives —
//! query, cluster shape, shuffle/join algorithm, and plan options —
//! without depending on the engine crate (the engine depends on this
//! crate, not the other way around). The engine converts its own types
//! into a `PlanSpec` before execution; tests and tools can build one
//! directly.

use parjoin_common::WireFormat;
use parjoin_core::hypercube::HcConfig;
use parjoin_query::{ConjunctiveQuery, VarId};

/// Which shuffle algorithm the plan uses (mirror of the engine's
/// `ShuffleAlg`, kept separate to avoid a dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleKind {
    /// Hash-partition both sides of every binary join on the shared key.
    Regular,
    /// Keep one fragment partitioned, broadcast all others everywhere.
    Broadcast,
    /// Single-round HyperCube (Shares) shuffle.
    HyperCube,
}

/// Which local join algorithm the plan uses (mirror of the engine's
/// `JoinAlg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Pairwise hash join.
    Hash,
    /// Tributary join (worst-case-optimal leapfrog over sorted arrays).
    Tributary,
}

/// Everything the analyzer needs to vet a plan before the engine runs
/// it.
#[derive(Debug, Clone)]
pub struct PlanSpec<'a> {
    /// The conjunctive query being evaluated.
    pub query: &'a ConjunctiveQuery,
    /// Per-atom input cardinalities, parallel to `query.atoms`
    /// (estimated or exact; used for resource pre-flight and
    /// broadcast-cost checks). Empty when unknown.
    pub cards: Vec<u64>,
    /// Number of workers in the cluster.
    pub workers: usize,
    /// Optional per-worker memory budget in tuples.
    pub memory_budget: Option<u64>,
    /// Shuffle algorithm.
    pub shuffle: ShuffleKind,
    /// Local join algorithm.
    pub join: JoinKind,
    /// Explicit multiway join order over atom indices, if the caller
    /// fixed one (for `Regular` shuffles and for local join orders).
    pub join_order: Option<Vec<usize>>,
    /// Explicit HyperCube configuration, if the caller fixed one.
    pub hc_config: Option<HcConfig>,
    /// Explicit global variable order for the Tributary join, if fixed.
    pub tj_order: Option<Vec<VarId>>,
    /// Rows per streamed shuffle batch, when the plan runs on a
    /// streaming transport. `None` means the in-memory `Local` path (no
    /// batching) or the runtime default.
    pub batch_tuples: Option<u64>,
    /// Frame encoding the streaming transports will use. Drives the
    /// batch-size pre-flight's per-frame byte estimate (R411/R414): each
    /// format's header overhead differs, and the estimate is derived
    /// from the same [`parjoin_common::wire`] arithmetic the send path
    /// uses.
    pub wire_format: WireFormat,
    /// Per-frame byte limit the streaming transports enforce, when the
    /// plan runs on one. An estimated frame above this limit warns
    /// (R414): the exchange would reject the very first full batch.
    pub max_frame_bytes: Option<u64>,
    /// Host core count, when known. Drives the intra-worker parallelism
    /// check (R413): each worker's prepare sorts and probe morsels get
    /// `host_cores / workers` threads, so `workers >= host_cores`
    /// silently degrades both to single-threaded. `None` (host unknown)
    /// skips the check.
    pub host_cores: Option<usize>,
    /// The cluster's base hash seed. The parallel-correctness certifier
    /// derives the plan's concrete hash channels (join-key seeds,
    /// per-dimension seeds) from it, so counterexample valuations found
    /// by [`crate::policy`] fail under the engine's *actual* routing.
    /// Symbolic certification does not depend on its value.
    pub seed: u64,
}

impl<'a> PlanSpec<'a> {
    /// A spec with no explicit plan options — the engine would pick
    /// default orders and an optimized HyperCube configuration.
    pub fn new(
        query: &'a ConjunctiveQuery,
        workers: usize,
        shuffle: ShuffleKind,
        join: JoinKind,
    ) -> Self {
        PlanSpec {
            query,
            cards: Vec::new(),
            workers,
            memory_budget: None,
            shuffle,
            join,
            join_order: None,
            hc_config: None,
            tj_order: None,
            batch_tuples: None,
            wire_format: WireFormat::default(),
            max_frame_bytes: None,
            host_cores: None,
            seed: 0,
        }
    }

    /// Sets per-atom cardinalities (builder style).
    #[must_use]
    pub fn with_cards(mut self, cards: Vec<u64>) -> Self {
        self.cards = cards;
        self
    }

    /// Sets the per-worker memory budget (builder style).
    #[must_use]
    pub fn with_memory_budget(mut self, budget: u64) -> Self {
        self.memory_budget = Some(budget);
        self
    }

    /// Sets an explicit join order (builder style).
    #[must_use]
    pub fn with_join_order(mut self, order: Vec<usize>) -> Self {
        self.join_order = Some(order);
        self
    }

    /// Sets an explicit HyperCube configuration (builder style).
    #[must_use]
    pub fn with_hc_config(mut self, config: HcConfig) -> Self {
        self.hc_config = Some(config);
        self
    }

    /// Sets an explicit Tributary variable order (builder style).
    #[must_use]
    pub fn with_tj_order(mut self, order: Vec<VarId>) -> Self {
        self.tj_order = Some(order);
        self
    }

    /// Sets the streaming shuffle batch size (builder style).
    #[must_use]
    pub fn with_batch_tuples(mut self, batch: u64) -> Self {
        self.batch_tuples = Some(batch);
        self
    }

    /// Sets the streaming wire format (builder style).
    #[must_use]
    pub fn with_wire_format(mut self, format: WireFormat) -> Self {
        self.wire_format = format;
        self
    }

    /// Sets the transport's per-frame byte limit (builder style).
    #[must_use]
    pub fn with_max_frame_bytes(mut self, limit: u64) -> Self {
        self.max_frame_bytes = Some(limit);
        self
    }

    /// Sets the host core count (builder style).
    #[must_use]
    pub fn with_host_cores(mut self, cores: usize) -> Self {
        self.host_cores = Some(cores);
        self
    }

    /// Sets the cluster's base hash seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The variable sets of each atom, in atom order (distinct, first
    /// occurrence first — the same view the engine uses).
    pub(crate) fn atom_vars(&self) -> Vec<Vec<VarId>> {
        self.query.atoms.iter().map(|a| a.vars()).collect()
    }

    /// Human-readable name for a variable, falling back to `#id`.
    pub(crate) fn var_name(&self, v: VarId) -> String {
        self.query
            .var_names
            .get(v.index())
            .filter(|n| !n.is_empty())
            .cloned()
            .unwrap_or_else(|| format!("#{}", v.0))
    }
}
