#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Pre-flight static analysis of parjoin plans.
//!
//! Given the same information the engine's `run_config` receives — a
//! [`ConjunctiveQuery`](parjoin_query::ConjunctiveQuery), the cluster
//! shape, the shuffle and join algorithm, and any explicit plan options
//! — [`analyze`] vets the plan *before* a single tuple moves and
//! returns typed [`Diagnostic`]s instead of letting the executor panic
//! mid-flight:
//!
//! * **Parallel-correctness** ([`checks::check_shuffle`]): the
//!   HyperCube shuffle is parallel-correct (in the sense of Ameloot et
//!   al.: the distribution policy co-locates every potential join
//!   result) for *any* configuration over the query's variables,
//!   because atoms replicate across dimensions they do not contain.
//!   The analyzer rejects the two cases that break this: more cells
//!   than workers (unexecutable) and dimensions on variables no atom
//!   contains (every join result is emitted once per coordinate —
//!   duplicated output under bag semantics). It warns about
//!   configurations that are correct but wasteful (join variables left
//!   undimensioned, most of the cluster idle) and about broadcast plans
//!   that ship more data than they keep partitioned.
//! * **Well-formedness** ([`checks::check_query`],
//!   [`checks::check_join_order`], [`checks::check_tj_order`]): the
//!   join order must be a permutation of the atom indices, the
//!   Tributary variable order must cover every variable of every atom,
//!   filters must become bindable somewhere in the plan, head
//!   variables must appear in some atom, and disconnected prefixes
//!   (which force cartesian expansion) are flagged.
//! * **Resource pre-flight** ([`checks::check_resources`]): a
//!   shuffle-specific per-worker load estimate is compared against the
//!   cluster memory budget, turning a guaranteed mid-flight
//!   `MemoryBudget` abort into an upfront warning.
//! * **Parallel-correctness certification** ([`policy`], [`transfer`]):
//!   every plan's shuffle strategy is modeled as an explicit
//!   distribution policy over a worker grid and *decided* — either
//!   proved parallel-correct (a certificate listing the per-dimension
//!   hash-agreement obligations, attached in `certify` mode as R420) or
//!   refuted with a minimal concrete counterexample valuation (R421).
//!   The [`transfer`] module extends the decision across queries:
//!   whether one query's shuffled placement is certified
//!   parallel-correct for a follow-up query (R424/R425), which backs
//!   zero-communication plan reuse and certified sort-cache hits.
//!
//! Errors mean "the engine must refuse to run this"; warnings ride
//! along with the result. The engine converts its plan types into a
//! [`PlanSpec`] and calls [`analyze`] at the top of `run_config`.
//! Diagnostics are returned in a canonical deterministic order (by
//! code, then site) regardless of pass execution order.

pub mod bind;
pub mod checks;
pub mod diagnostic;
pub mod policy;
pub mod spec;
pub mod transfer;

pub use bind::bind_against_catalog;
pub use checks::estimated_frame_bytes;
pub use diagnostic::{has_errors, sort_diagnostics, DiagCode, Diagnostic, Severity};
pub use policy::{certify, certify_spec, planned_policy, Policy, Verdict};
pub use spec::{JoinKind, PlanSpec, ShuffleKind};
pub use transfer::{transfers, TransferVerdict};

/// Runs every analysis pass over the plan and returns the combined
/// findings (errors and warnings, sorted canonically by code then
/// site).
pub fn analyze(spec: &PlanSpec<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    checks::check_query(spec, &mut out);
    checks::check_join_order(spec, &mut out);
    checks::check_tj_order(spec, &mut out);
    checks::check_shuffle(spec, &mut out);
    checks::check_resources(spec, &mut out);
    checks::check_sort_cache(spec, &mut out);
    checks::check_probe_parallelism(spec, &mut out);
    checks::check_runtime(spec, &mut out);
    policy::check(spec, &mut out);
    sort_diagnostics(&mut out);
    out
}

/// Pre-flight gate over [`analyze`]: `Ok(diags)` when the plan carries
/// no errors (warnings ride along), `Err(diags)` when at least one
/// diagnostic is an error and the plan must be refused.
///
/// This is the single entry point used on both ends of the wire — the
/// coordinator vets a plan before serializing fragments, and each
/// worker re-runs the same gate on the spec it rebuilds from a decoded
/// fragment, so a corrupted or stale fragment is refused before any
/// tuple moves.
///
/// # Errors
/// The full diagnostic list (errors and warnings) when any diagnostic
/// has error severity.
pub fn preflight(spec: &PlanSpec<'_>) -> Result<Vec<Diagnostic>, Vec<Diagnostic>> {
    let diags = analyze(spec);
    if has_errors(&diags) {
        Err(diags)
    } else {
        Ok(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_core::hypercube::HcConfig;
    use parjoin_query::{ConjunctiveQuery, QueryBuilder, VarId};

    fn triangle() -> ConjunctiveQuery {
        let mut b = QueryBuilder::new("Triangle");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, x]);
        b.build()
    }

    #[test]
    fn clean_plan_yields_no_diagnostics() {
        let q = triangle();
        let spec = PlanSpec::new(&q, 8, ShuffleKind::HyperCube, JoinKind::Hash)
            .with_cards(vec![100, 100, 100])
            .with_hc_config(HcConfig::new(
                vec![VarId(0), VarId(1), VarId(2)],
                vec![2, 2, 2],
            ));
        assert_eq!(analyze(&spec), Vec::new());
    }

    #[test]
    fn oversized_hc_config_is_an_error() {
        let q = triangle();
        let spec = PlanSpec::new(&q, 4, ShuffleKind::HyperCube, JoinKind::Hash).with_hc_config(
            HcConfig::new(vec![VarId(0), VarId(1), VarId(2)], vec![2, 2, 2]),
        );
        let diags = analyze(&spec);
        assert!(has_errors(&diags));
        assert!(diags.iter().any(|d| d.code == DiagCode::HcConfigOversized));
    }

    #[test]
    fn join_order_duplicate_is_an_error() {
        let q = triangle();
        let spec = PlanSpec::new(&q, 4, ShuffleKind::Regular, JoinKind::Hash)
            .with_join_order(vec![0, 0, 1]);
        let diags = analyze(&spec);
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::JoinOrderNotPermutation));
    }

    #[test]
    fn partial_tj_order_is_an_error() {
        let q = triangle();
        let spec = PlanSpec::new(&q, 4, ShuffleKind::HyperCube, JoinKind::Tributary)
            .with_tj_order(vec![VarId(0), VarId(1)]); // omits z
        let diags = analyze(&spec);
        assert!(diags.iter().any(|d| d.code == DiagCode::TjOrderIncomplete));
    }

    #[test]
    fn disconnected_query_warns() {
        let mut b = QueryBuilder::new("Cross");
        let (x, y, u, v) = (b.var("x"), b.var("y"), b.var("u"), b.var("v"));
        b.atom("R", [x, y]).atom("S", [u, v]);
        let q = b.build();
        let spec = PlanSpec::new(&q, 4, ShuffleKind::Regular, JoinKind::Hash);
        let diags = analyze(&spec);
        assert!(
            !has_errors(&diags),
            "disconnection is a warning, got {diags:?}"
        );
        assert!(diags.iter().any(|d| d.code == DiagCode::QueryDisconnected));
    }

    #[test]
    fn zero_batch_size_is_an_error() {
        let q = triangle();
        let spec = PlanSpec::new(&q, 4, ShuffleKind::Regular, JoinKind::Hash).with_batch_tuples(0);
        let diags = analyze(&spec);
        assert!(has_errors(&diags));
        assert!(diags.iter().any(|d| d.code == DiagCode::BatchSizeZero));
    }

    #[test]
    fn batch_over_budget_warns() {
        let q = triangle();
        let spec = PlanSpec::new(&q, 4, ShuffleKind::Regular, JoinKind::Hash)
            .with_memory_budget(1_000)
            .with_batch_tuples(5_000);
        let diags = analyze(&spec);
        assert!(!has_errors(&diags), "over-budget batch is only a warning");
        assert!(diags.iter().any(|d| d.code == DiagCode::BatchOverBudget));
    }

    #[test]
    fn sane_batch_size_is_silent() {
        let q = triangle();
        let spec = PlanSpec::new(&q, 4, ShuffleKind::Regular, JoinKind::Hash)
            .with_memory_budget(10_000)
            .with_batch_tuples(4_096);
        assert!(analyze(&spec)
            .iter()
            .all(|d| d.code != DiagCode::BatchSizeZero && d.code != DiagCode::BatchOverBudget));
    }

    #[test]
    fn batch_over_budget_carries_frame_byte_estimate() {
        let q = triangle(); // widest atom: arity 2
        let spec = PlanSpec::new(&q, 4, ShuffleKind::Regular, JoinKind::Hash)
            .with_memory_budget(1_000)
            .with_batch_tuples(5_000);
        let diags = analyze(&spec);
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::BatchOverBudget)
            .expect("R411 fires");
        let frame = d
            .context
            .iter()
            .find(|(k, _)| k == "frame_bytes")
            .map(|(_, v)| v.clone())
            .expect("R411 names the frame size");
        // The estimate is the wire module's own arithmetic for a full
        // batch of the widest atom — not a drifted re-derivation.
        let expect = parjoin_common::wire::frame_bytes(Default::default(), 2, 5_000);
        assert_eq!(frame, expect.to_string());
    }

    #[test]
    fn frame_over_limit_warns_with_both_sizes() {
        let q = triangle();
        // 4096 rows × arity 2 × 8 bytes ≈ 64 KiB per frame; a 1 KiB
        // limit cannot carry the very first full batch.
        let spec = PlanSpec::new(&q, 4, ShuffleKind::Regular, JoinKind::Hash)
            .with_batch_tuples(4_096)
            .with_max_frame_bytes(1_024);
        let diags = analyze(&spec);
        assert!(!has_errors(&diags), "R414 is a warning: {diags:?}");
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::FrameOverLimit)
            .expect("R414 fires");
        assert_eq!(d.code.code(), "R414");
        assert!(d.context.iter().any(|(k, _)| k == "frame_bytes"));
        assert!(d
            .context
            .iter()
            .any(|(k, v)| k == "max_frame_bytes" && v == "1024"));
    }

    #[test]
    fn frame_under_limit_is_silent() {
        let q = triangle();
        let spec = PlanSpec::new(&q, 4, ShuffleKind::Regular, JoinKind::Hash)
            .with_batch_tuples(4_096)
            .with_max_frame_bytes(64 << 20);
        assert!(analyze(&spec)
            .iter()
            .all(|d| d.code != DiagCode::FrameOverLimit));
    }

    #[test]
    fn sort_cache_over_budget_warns() {
        let q = triangle();
        // Broadcast TJ: each worker sorts ~(total - largest) + largest/p
        // tuples plus their sorted copies — far over a budget of 100.
        let spec = PlanSpec::new(&q, 4, ShuffleKind::Broadcast, JoinKind::Tributary)
            .with_cards(vec![1_000, 1_000, 1_000])
            .with_memory_budget(100);
        let diags = analyze(&spec);
        assert!(!has_errors(&diags), "R412 is a warning: {diags:?}");
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::SortCacheOverBudget)
            .expect("R412 expected");
        assert_eq!(d.code.code(), "R412");
        assert!(d.context_value("working_set_tuples").is_some());
    }

    #[test]
    fn sort_cache_within_budget_is_silent() {
        let q = triangle();
        let spec = PlanSpec::new(&q, 4, ShuffleKind::Broadcast, JoinKind::Tributary)
            .with_cards(vec![100, 100, 100])
            .with_memory_budget(1_000_000);
        assert!(analyze(&spec)
            .iter()
            .all(|d| d.code != DiagCode::SortCacheOverBudget));
    }

    #[test]
    fn sort_cache_check_ignores_hash_joins() {
        let q = triangle();
        // Same shape as the warning case but with a hash join: the sort
        // pipeline never runs, so R412 must stay silent.
        let spec = PlanSpec::new(&q, 4, ShuffleKind::Broadcast, JoinKind::Hash)
            .with_cards(vec![1_000, 1_000, 1_000])
            .with_memory_budget(100);
        assert!(analyze(&spec)
            .iter()
            .all(|d| d.code != DiagCode::SortCacheOverBudget));
    }

    #[test]
    fn probe_parallelism_degraded_warns() {
        let q = triangle();
        // 4 workers on a 4-core host: each worker's prepare/probe pool
        // gets exactly one thread.
        let spec =
            PlanSpec::new(&q, 4, ShuffleKind::Regular, JoinKind::Tributary).with_host_cores(4);
        let diags = analyze(&spec);
        assert!(!has_errors(&diags), "R413 is a warning: {diags:?}");
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::ProbeParallelismDegraded)
            .expect("R413 expected");
        assert_eq!(d.code.code(), "R413");
        assert_eq!(d.context_value("per_worker_threads"), Some("1"));
        assert_eq!(d.context_value("host_cores"), Some("4"));
    }

    #[test]
    fn probe_parallelism_silent_with_spare_cores() {
        let q = triangle();
        let spec =
            PlanSpec::new(&q, 4, ShuffleKind::Regular, JoinKind::Tributary).with_host_cores(16);
        assert!(analyze(&spec)
            .iter()
            .all(|d| d.code != DiagCode::ProbeParallelismDegraded));
    }

    #[test]
    fn probe_parallelism_silent_when_host_unknown() {
        let q = triangle();
        let spec = PlanSpec::new(&q, 64, ShuffleKind::Regular, JoinKind::Tributary);
        assert!(analyze(&spec)
            .iter()
            .all(|d| d.code != DiagCode::ProbeParallelismDegraded));
    }

    #[test]
    fn memory_preflight_warns() {
        let q = triangle();
        let spec = PlanSpec::new(&q, 2, ShuffleKind::Broadcast, JoinKind::Hash)
            .with_cards(vec![1_000, 1_000, 1_000])
            .with_memory_budget(10);
        let diags = analyze(&spec);
        assert!(!has_errors(&diags));
        assert!(diags.iter().any(|d| d.code == DiagCode::MemoryPreflight));
    }
}
