//! Catalog binding pre-flight for served queries.
//!
//! A serving front end accepts query text referencing relations *by
//! name* against a resident catalog; a typo (or a relation dropped
//! between submissions) must be caught **before** the query spends any
//! scheduler or executor capacity. [`bind_against_catalog`] checks every
//! body atom against the catalog and reports two findings:
//!
//! * [`DiagCode::CatalogUnknownRelation`] — an atom references a
//!   relation the catalog does not hold. The diagnostic carries the
//!   full known-relation list as context, so the client can see what
//!   *is* loadable without a second round-trip.
//! * [`DiagCode::CatalogArityMismatch`] — the relation exists but the
//!   atom uses it at the wrong arity; running would mis-bind every
//!   column.
//!
//! Both are errors: the session layer refuses to schedule a query whose
//! bind pass found any. The pass is intentionally cheap (name and arity
//! lookups only — no data touched) so it can run on the session thread
//! at admission time.

use crate::diagnostic::{sort_diagnostics, DiagCode, Diagnostic};
use parjoin_common::Database;
use parjoin_query::ConjunctiveQuery;
use std::collections::BTreeSet;

/// Checks every atom of `query` against the catalog `db`, returning
/// bind errors (empty when the query binds cleanly). One diagnostic is
/// emitted per offending *relation name* (not per atom occurrence), in
/// canonical sorted order.
pub fn bind_against_catalog(query: &ConjunctiveQuery, db: &Database) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut missing = BTreeSet::new();
    let mut mismatched = BTreeSet::new();
    for atom in &query.atoms {
        match db.get(&atom.relation) {
            None => {
                if missing.insert(atom.relation.clone()) {
                    let known: Vec<&str> = db.iter().map(|(n, _)| n).collect();
                    out.push(
                        Diagnostic::error(
                            DiagCode::CatalogUnknownRelation,
                            format!("relation `{}` is not in the catalog", atom.relation),
                        )
                        .with("relation", &atom.relation)
                        .with(
                            "known",
                            if known.is_empty() {
                                "(catalog is empty)".to_string()
                            } else {
                                known.join(", ")
                            },
                        ),
                    );
                }
            }
            Some(rel) if rel.arity() != atom.terms.len() => {
                if mismatched.insert(atom.relation.clone()) {
                    out.push(
                        Diagnostic::error(
                            DiagCode::CatalogArityMismatch,
                            format!(
                                "relation `{}` has arity {} but the query uses it with {} term(s)",
                                atom.relation,
                                rel.arity(),
                                atom.terms.len()
                            ),
                        )
                        .with("relation", &atom.relation)
                        .with("catalog_arity", rel.arity())
                        .with("query_arity", atom.terms.len()),
                    );
                }
            }
            Some(_) => {}
        }
    }
    sort_diagnostics(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_common::Relation;
    use parjoin_query::QueryBuilder;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert("Twitter", Relation::from_rows(2, [[1u64, 2]].iter()));
        db.insert("ObjectName", Relation::from_rows(2, [[1u64, 2]].iter()));
        db
    }

    #[test]
    fn clean_bind_is_empty() {
        let mut b = QueryBuilder::new("Tri");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("Twitter", [x, y])
            .atom("Twitter", [y, z])
            .atom("Twitter", [z, x]);
        assert!(bind_against_catalog(&b.build(), &db()).is_empty());
    }

    #[test]
    fn missing_relation_reports_known_list_once() {
        let mut b = QueryBuilder::new("Q");
        let (x, y) = (b.var("x"), b.var("y"));
        b.atom("Nope", [x, y]).atom("Nope", [y, x]);
        let diags = bind_against_catalog(&b.build(), &db());
        assert_eq!(diags.len(), 1, "one diagnostic per relation name");
        assert_eq!(diags[0].code, DiagCode::CatalogUnknownRelation);
        assert_eq!(diags[0].code.code(), "Q110");
        let known = diags[0].context_value("known").expect("known list");
        assert!(known.contains("Twitter"), "got {known}");
        assert!(known.contains("ObjectName"), "got {known}");
    }

    #[test]
    fn arity_mismatch_reports_both_arities() {
        let mut b = QueryBuilder::new("Q");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("Twitter", [x, y, z]);
        let diags = bind_against_catalog(&b.build(), &db());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::CatalogArityMismatch);
        assert_eq!(diags[0].code.code(), "Q111");
        assert_eq!(diags[0].context_value("catalog_arity"), Some("2"));
        assert_eq!(diags[0].context_value("query_arity"), Some("3"));
    }

    #[test]
    fn empty_catalog_says_so() {
        let mut b = QueryBuilder::new("Q");
        let x = b.var("x");
        b.atom("R", [x, x]);
        let diags = bind_against_catalog(&b.build(), &Database::new());
        assert_eq!(diags[0].context_value("known"), Some("(catalog is empty)"));
    }
}
