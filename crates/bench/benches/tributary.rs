//! Tributary join vs a local hash-join tree on the triangle query —
//! the single-machine core of the paper's HJ/TJ comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parjoin_core::order::{best_order, OrderCostModel};
use parjoin_core::tributary::{BTreeAtom, SortedAtom, Tributary};
use parjoin_datagen::graph;
use parjoin_query::VarId;

fn v(i: u32) -> VarId {
    VarId(i)
}

fn bench_triangle(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle_local_join");
    for &nodes in &[400u64, 1_600, 6_400] {
        let g = graph::twitter_graph(nodes, 5, 7);
        let vars = vec![v(0), v(1), v(2)];
        let atoms_spec: Vec<(&parjoin_common::Relation, Vec<VarId>)> = vec![
            (&g, vec![v(0), v(1)]),
            (&g, vec![v(1), v(2)]),
            (&g, vec![v(2), v(0)]),
        ];
        let model = OrderCostModel::from_atoms(&atoms_spec);
        let (order, _) = best_order(&model, &vars);

        group.bench_with_input(
            BenchmarkId::new("tributary_incl_sort", g.len()),
            &g,
            |b, g| {
                b.iter(|| {
                    let prepared: Vec<SortedAtom> = atoms_spec
                        .iter()
                        .map(|(_, vs)| SortedAtom::prepare(g, vs, &order))
                        .collect();
                    Tributary::new(&prepared, &order, &[], 3).count()
                });
            },
        );

        let prepared: Vec<SortedAtom> = atoms_spec
            .iter()
            .map(|(_, vs)| SortedAtom::prepare(&g, vs, &order))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("tributary_presorted", g.len()),
            &prepared,
            |b, prepared| b.iter(|| Tributary::new(prepared, &order, &[], 3).count()),
        );

        // The §2.2 trade-off: building B-trees on the fly vs sorting.
        group.bench_with_input(
            BenchmarkId::new("btree_lftj_incl_build", g.len()),
            &g,
            |b, g| {
                b.iter(|| {
                    let prepared: Vec<BTreeAtom> = atoms_spec
                        .iter()
                        .map(|(_, vs)| BTreeAtom::prepare(g, vs, &order))
                        .collect();
                    Tributary::new(&prepared, &order, &[], 3).count()
                });
            },
        );

        group.bench_with_input(BenchmarkId::new("hash_join_tree", g.len()), &g, |b, g| {
            use parjoin_engine::local::{hash_join, SchemaRel};
            b.iter(|| {
                let r = SchemaRel {
                    vars: vec![v(0), v(1)],
                    rel: g.clone(),
                };
                let s = SchemaRel {
                    vars: vec![v(1), v(2)],
                    rel: g.clone(),
                };
                let t = SchemaRel {
                    vars: vec![v(2), v(0)],
                    rel: g.clone(),
                };
                let rs = hash_join(&r, &s, 1);
                hash_join(&rs, &t, 1).rel.len()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_triangle
}
criterion_main!(benches);
