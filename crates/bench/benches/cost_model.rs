//! Cost-model overheads: computing the distinct-prefix statistics (once
//! per relation) and enumerating all k! variable orders (per query).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parjoin_core::order::{best_order, AtomStats, OrderCostModel};
use parjoin_datagen::graph;
use parjoin_query::VarId;

fn v(i: u32) -> VarId {
    VarId(i)
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    for &nodes in &[2_000u64, 10_000] {
        let g = graph::twitter_graph(nodes, 5, 9);
        group.bench_with_input(BenchmarkId::new("atom_stats", g.len()), &g, |b, g| {
            b.iter(|| AtomStats::compute(g));
        });
    }

    // 8-variable enumeration (Q4's size): 40320 orders.
    let g = graph::twitter_graph(2_000, 4, 11);
    let atoms: Vec<(&parjoin_common::Relation, Vec<VarId>)> = (0..8u32)
        .map(|i| (&g, vec![v(i), v((i + 1) % 8)]))
        .collect();
    let model = OrderCostModel::from_atoms(&atoms);
    let vars: Vec<VarId> = (0..8).map(v).collect();
    group.bench_function("enumerate_8var_orders", |b| {
        b.iter(|| best_order(&model, &vars));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stats
}
criterion_main!(benches);
