//! Probe phase of the Tributary join — the other ~27% of local-join
//! time (Table 5) — across three kernels on Zipf-skewed graphs:
//!
//! * `binary_seek` — a bench-local [`TrieCursor`] whose `seek` and
//!   run-end scans are plain full-range binary searches with no
//!   memoization: the pre-galloping baseline.
//! * `gallop` — the production row-layout [`TrieIter`] (exponential
//!   probe + narrow binary search, memoized run ends), run sequentially.
//! * `columnar` — the production [`ColumnarAtom`] (level-segmented CSR
//!   trie, branch-free chunk-wise gallop), run sequentially: the
//!   layout speedup over `gallop` is the headline number.
//! * `morsel_t{2,4}` — the row-layout kernel under the morsel-parallel
//!   dispatcher ([`tributary_probe`]) at 2 and 4 probe threads.
//! * `fixed_t{2,4}` / `steal_t{2,4}` — the columnar kernel under the
//!   fixed-quota vs work-stealing morsel schedulers
//!   ([`tributary_probe_sched`]): stealing must never lose on the
//!   skew-prone shapes.
//!
//! Skew matters: under a Zipf-like degree distribution a few hot nodes
//! own long runs, so leapfrog seeks routinely jump many rows — exactly
//! where galloping's `O(log m)` beats restarting a binary search over
//! the whole remaining range. Measured numbers are checked in at
//! `BENCH_probe.json` (regenerate with
//! `cargo bench -p parjoin-bench --bench probe`).
//!
//! The vendored criterion stand-in ignores CLI arguments, so quick mode
//! (CI's `-- --test` smoke run) is detected here: it shrinks the graph
//! (still above the morsel threshold) and the sample count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parjoin_common::{hash, Relation, Value};
use parjoin_core::tributary::{ColumnarAtom, SortedAtom, Tributary, TrieAtom, TrieCursor};
use parjoin_engine::probe::{tributary_probe, tributary_probe_sched, MorselSched, ProbeAtom};
use parjoin_query::VarId;

/// True when invoked as a smoke test (`cargo bench ... -- --test`); the
/// stub harness forwards but does not interpret the flag.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

/// `edges` directed edges over `nodes` vertices with a Zipf-like
/// endpoint distribution: endpoints are drawn by pushing a uniform
/// hash through an inverse power law, so low node ids are hot (a few
/// nodes own a large fraction of the edges) and trie runs are long.
fn zipf_edges(edges: usize, nodes: u64, seed: u64) -> Relation {
    let skew = |u: f64| -> Value {
        // Inverse-CDF of p(k) ~ 1/(k+1) truncated to [0, nodes)
        // (log-uniform): classic Zipf-1 frequencies — hot low ids with
        // a long tail, so out-degrees are heavily skewed.
        let k = (nodes as f64).powf(u) - 1.0;
        (k as u64).min(nodes - 1)
    };
    let unit = |h: u64| (h >> 11) as f64 / (1u64 << 53) as f64;
    let rows: Vec<[Value; 2]> = (0..edges)
        .map(|i| {
            let a = skew(unit(hash::hash64(2 * i as u64, seed)));
            let b = hash::hash64(2 * i as u64 + 1, seed ^ 0x9e37) % nodes;
            [a, b]
        })
        .collect();
    Relation::from_rows(2, rows).distinct()
}

/// The pre-galloping baseline: an array trie whose cursor re-runs a
/// full-range binary search on every `seek` and every run-end
/// computation (`open`/`next_key`), with no memoization. Functionally
/// identical to [`parjoin_core::tributary::TrieIter`].
struct BinAtom {
    rel: Relation,
    depths: Vec<usize>,
}

impl BinAtom {
    fn from_sorted(atom: &SortedAtom) -> BinAtom {
        BinAtom {
            rel: atom.relation().clone(),
            depths: atom.depths().to_vec(),
        }
    }
}

struct BinCursor<'a> {
    rel: &'a Relation,
    depth: usize,
    range: Vec<(usize, usize)>,
    pos: Vec<usize>,
}

const ROOT: usize = usize::MAX;

impl BinCursor<'_> {
    /// First row in `[self.pos[d], hi)` whose column-`d` value is `>= v`
    /// — textbook binary search over the whole remaining range.
    fn lower_bound(&self, d: usize, v: Value) -> usize {
        let (mut lo, mut hi) = (self.pos[d], self.range[d].1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.rel.value(mid, d) < v {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn run_end(&self, d: usize) -> usize {
        match self.key().checked_add(1) {
            Some(next) => self.lower_bound(d, next),
            None => self.range[d].1,
        }
    }
}

impl TrieCursor for BinCursor<'_> {
    fn open(&mut self) {
        if self.depth == ROOT {
            self.depth = 0;
            self.range[0] = (0, self.rel.len());
            self.pos[0] = 0;
        } else {
            let child = (self.pos[self.depth], self.run_end(self.depth));
            self.depth += 1;
            self.range[self.depth] = child;
            self.pos[self.depth] = child.0;
        }
    }

    fn up(&mut self) {
        self.depth = if self.depth == 0 {
            ROOT
        } else {
            self.depth - 1
        };
    }

    fn next_key(&mut self) {
        self.pos[self.depth] = self.run_end(self.depth);
    }

    fn seek(&mut self, v: Value) {
        if self.key() < v {
            self.pos[self.depth] = self.lower_bound(self.depth, v);
        }
    }

    fn key(&self) -> Value {
        self.rel.value(self.pos[self.depth], self.depth)
    }

    fn at_end(&self) -> bool {
        self.pos[self.depth] >= self.range[self.depth].1
    }
}

impl TrieAtom for BinAtom {
    type Cursor<'a> = BinCursor<'a>;

    fn depths(&self) -> &[usize] {
        &self.depths
    }

    fn cursor(&self) -> BinCursor<'_> {
        let a = self.rel.arity();
        BinCursor {
            rel: &self.rel,
            depth: ROOT,
            range: vec![(0, 0); a],
            pos: vec![0; a],
        }
    }
}

impl ProbeAtom for BinAtom {
    fn split_rows(&self) -> usize {
        self.rel.len()
    }

    fn split_len(&self) -> usize {
        self.rel.len()
    }

    fn split_key(&self, k: usize) -> Value {
        self.rel.value(k, 0)
    }
}

fn v(i: u32) -> VarId {
    VarId(i)
}

/// (name, atom variable lists) for the two cyclic shapes.
fn shapes() -> Vec<(&'static str, Vec<[VarId; 2]>)> {
    vec![
        ("triangle", vec![[v(0), v(1)], [v(1), v(2)], [v(2), v(0)]]),
        (
            "four_cycle",
            vec![[v(0), v(1)], [v(1), v(2)], [v(2), v(3)], [v(3), v(0)]],
        ),
    ]
}

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe");
    let edges_n: usize = if quick_mode() { 6_000 } else { 40_000 };
    let nodes: u64 = (edges_n as u64 / 4).max(64);
    let edges = zipf_edges(edges_n, nodes, 17);

    for (name, atom_vars) in shapes() {
        let num_vars = atom_vars.len();
        let order: Vec<VarId> = (0..num_vars as u32).map(v).collect();
        let sorted: Vec<SortedAtom> = atom_vars
            .iter()
            .map(|vs| SortedAtom::prepare(&edges, vs, &order))
            .collect();
        let bin: Vec<BinAtom> = sorted.iter().map(BinAtom::from_sorted).collect();
        let columnar: Vec<ColumnarAtom> = atom_vars
            .iter()
            .map(|vs| ColumnarAtom::prepare(&edges, vs, &order))
            .collect();
        let label = format!("{name}/{}e", edges.len());
        group.throughput(Throughput::Elements(edges.len() as u64));

        group.bench_with_input(BenchmarkId::new("binary_seek", &label), &bin, |b, atoms| {
            let tj = Tributary::new(atoms, &order, &[], num_vars);
            b.iter(|| {
                let mut n = 0u64;
                tj.run(|_| {
                    n += 1;
                    true
                });
                n
            });
        });

        group.bench_with_input(BenchmarkId::new("gallop", &label), &sorted, |b, atoms| {
            let tj = Tributary::new(atoms, &order, &[], num_vars);
            b.iter(|| {
                let mut n = 0u64;
                tj.run(|_| {
                    n += 1;
                    true
                });
                n
            });
        });

        group.bench_with_input(
            BenchmarkId::new("columnar", &label),
            &columnar,
            |b, atoms| {
                let tj = Tributary::new(atoms, &order, &[], num_vars);
                b.iter(|| {
                    let mut n = 0u64;
                    tj.run(|_| {
                        n += 1;
                        true
                    });
                    n
                });
            },
        );

        for threads in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("morsel_t{threads}"), &label),
                &sorted,
                |b, atoms| {
                    let tj = Tributary::new(atoms, &order, &[], num_vars);
                    b.iter(|| tributary_probe(&tj, atoms, &order, threads).rel.len());
                },
            );
            for (sched_name, sched) in [
                ("fixed", MorselSched::FixedQuota),
                ("steal", MorselSched::WorkStealing),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{sched_name}_t{threads}"), &label),
                    &columnar,
                    |b, atoms| {
                        let tj = Tributary::new(atoms, &order, &[], num_vars);
                        b.iter(|| {
                            tributary_probe_sched(&tj, atoms, &order, threads, sched)
                                .rel
                                .len()
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(if quick_mode() { 2 } else { 10 });
    targets = bench_probe
}
criterion_main!(benches);
