//! Exchange throughput: the sequential Local loop vs the InProcess
//! streaming transport at several batch sizes, hash-routing a two-column
//! graph across 8 workers. Streaming pays wire encoding and channel
//! hops; the interesting number is how quickly larger batches amortize
//! that overhead.
//!
//! The `exchange_wire` group isolates the wire path itself: the legacy
//! varint framing (owned encode buffer per frame) against the zero-copy
//! vectored framing, and compressed vs raw vectored frames on the
//! sorted-run shape delta coding is built for. `exchange_stats` (the
//! `BENCH_exchange.json` binary) reports the same kernels with
//! counter-verified byte accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parjoin_common::{hash, Relation, WireFormat};
use parjoin_datagen::graph;
use parjoin_runtime::{local_shuffle, Router, Runtime, RuntimeConfig, TransportKind};
use std::sync::Arc;

const WORKERS: usize = 8;

fn make_parts(rel: &Relation) -> Vec<Relation> {
    let mut parts: Vec<Relation> = (0..WORKERS).map(|_| Relation::new(rel.arity())).collect();
    for (i, row) in rel.rows().enumerate() {
        parts[i % WORKERS].push_row(row);
    }
    parts
}

fn hash_router(seed: u64) -> Router {
    Arc::new(move |_w, row, dests| {
        dests.push(hash::bucket_row(&[row[1]], seed, WORKERS));
    })
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange");
    let g = graph::twitter_graph(20_000, 5, 3);
    let parts = make_parts(&g);
    let router = hash_router(42);
    group.throughput(Throughput::Elements(g.len() as u64));

    group.bench_with_input(BenchmarkId::new("local", g.len()), &parts, |b, p| {
        b.iter(|| local_shuffle(p, &router));
    });

    for batch in [512usize, 4096, 16_384] {
        let rt = Runtime::new(RuntimeConfig {
            workers: WORKERS,
            transport: TransportKind::InProcess,
            batch_tuples: batch,
            ..RuntimeConfig::default()
        })
        .expect("runtime spawns");
        group.bench_with_input(
            BenchmarkId::new("in_process", format!("batch{batch}")),
            &parts,
            |b, p| {
                b.iter(|| {
                    rt.shuffle(p.clone(), Arc::clone(&router))
                        .expect("exchange succeeds")
                });
            },
        );
        rt.shutdown().expect("clean shutdown");
    }
    group.finish();
}

/// Sorted-run partitions (each destination receives contiguous ranges),
/// the shape a shuffle of a sorted relation produces.
fn sorted_parts(rows: usize) -> Vec<Relation> {
    let mut parts: Vec<Relation> = (0..WORKERS).map(|_| Relation::new(2)).collect();
    for i in 0..rows {
        let v = i as u64;
        parts[i % WORKERS].push_row(&[v, v * 3]);
    }
    parts
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_wire");
    let rows = 80_000usize;
    let hashed = make_parts(&graph::twitter_graph(20_000, 5, 3));
    let sorted = sorted_parts(rows);
    let hash_route = hash_router(42);
    let range_route: Router = Arc::new(move |_w, row, dests| {
        dests.push((row[0] as usize * WORKERS / rows).min(WORKERS - 1));
    });

    // (kernel, format, compression, partitions, router)
    let kernels: Vec<(&str, WireFormat, bool, &Vec<Relation>, &Router)> = vec![
        (
            "varint_copy",
            WireFormat::Varint,
            false,
            &hashed,
            &hash_route,
        ),
        (
            "vectored",
            WireFormat::Vectored,
            false,
            &hashed,
            &hash_route,
        ),
        (
            "raw_sorted",
            WireFormat::Vectored,
            false,
            &sorted,
            &range_route,
        ),
        (
            "delta_sorted",
            WireFormat::Vectored,
            true,
            &sorted,
            &range_route,
        ),
    ];
    for (name, format, compression, parts, router) in kernels {
        let tuples: usize = parts.iter().map(Relation::len).sum();
        group.throughput(Throughput::Elements(tuples as u64));
        let rt = Runtime::new(RuntimeConfig {
            workers: WORKERS,
            transport: TransportKind::InProcess,
            batch_tuples: 4096,
            wire_format: format,
            wire_compression: compression,
            ..RuntimeConfig::default()
        })
        .expect("runtime spawns");
        group.bench_with_input(BenchmarkId::new(name, tuples), parts, |b, p| {
            b.iter(|| {
                rt.shuffle(p.clone(), Arc::clone(router))
                    .expect("exchange succeeds")
            });
        });
        rt.shutdown().expect("clean shutdown");
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_exchange, bench_wire
}
criterion_main!(benches);
