//! Exchange throughput: the sequential Local loop vs the InProcess
//! streaming transport at several batch sizes, hash-routing a two-column
//! graph across 8 workers. Streaming pays wire encoding and channel
//! hops; the interesting number is how quickly larger batches amortize
//! that overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parjoin_common::{hash, Relation};
use parjoin_datagen::graph;
use parjoin_runtime::{local_shuffle, Router, Runtime, RuntimeConfig, TransportKind};
use std::sync::Arc;

const WORKERS: usize = 8;

fn make_parts(rel: &Relation) -> Vec<Relation> {
    let mut parts: Vec<Relation> = (0..WORKERS).map(|_| Relation::new(rel.arity())).collect();
    for (i, row) in rel.rows().enumerate() {
        parts[i % WORKERS].push_row(row);
    }
    parts
}

fn hash_router(seed: u64) -> Router {
    Arc::new(move |_w, row, dests| {
        dests.push(hash::bucket_row(&[row[1]], seed, WORKERS));
    })
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange");
    let g = graph::twitter_graph(20_000, 5, 3);
    let parts = make_parts(&g);
    let router = hash_router(42);
    group.throughput(Throughput::Elements(g.len() as u64));

    group.bench_with_input(BenchmarkId::new("local", g.len()), &parts, |b, p| {
        b.iter(|| local_shuffle(p, &router));
    });

    for batch in [512usize, 4096, 16_384] {
        let rt = Runtime::new(RuntimeConfig {
            workers: WORKERS,
            transport: TransportKind::InProcess,
            batch_tuples: batch,
            ..RuntimeConfig::default()
        })
        .expect("runtime spawns");
        group.bench_with_input(
            BenchmarkId::new("in_process", format!("batch{batch}")),
            &parts,
            |b, p| {
                b.iter(|| {
                    rt.shuffle(p.clone(), Arc::clone(&router))
                        .expect("exchange succeeds")
                });
            },
        );
        rt.shutdown().expect("clean shutdown");
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_exchange
}
criterion_main!(benches);
