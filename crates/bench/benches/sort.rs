//! Sorting — the dominant Tributary-join cost (Table 5) — at several
//! scales: raw lexicographic sort vs the full `SortedAtom::prepare`
//! (column permutation + sort).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parjoin_core::tributary::SortedAtom;
use parjoin_datagen::graph;
use parjoin_query::VarId;

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    for &nodes in &[2_000u64, 8_000, 32_000] {
        let g = graph::twitter_graph(nodes, 5, 13);
        group.throughput(Throughput::Elements(g.len() as u64));
        group.bench_with_input(BenchmarkId::new("sort_lex", g.len()), &g, |b, g| {
            b.iter(|| {
                let mut r = g.clone();
                r.sort_lex();
                r.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("prepare_permuted", g.len()), &g, |b, g| {
            // Permutation (y, x): forces the column shuffle path.
            b.iter(|| {
                SortedAtom::prepare(g, &[VarId(1), VarId(0)], &[VarId(0), VarId(1)])
                    .relation()
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sort
}
criterion_main!(benches);
