//! Sorting — the dominant Tributary-join cost (Table 5) — across the
//! three prepare kernels: the comparator index sort, the LSD radix
//! index sort, and the chunked parallel sort (`sorted_by_columns_parallel`)
//! at the thread count an under-subscribed worker would get.
//!
//! Rows are node-id-like: each value is `hash64(i, seed) % domain` with
//! a bounded domain, so high key bytes are constant and the radix sort's
//! vary-mask pass skipping matters — the same distribution the paper's
//! graph workloads produce. Measured numbers are checked in at
//! `BENCH_sort.json` (regenerate with
//! `cargo bench -p parjoin-bench --bench sort`).
//!
//! The vendored criterion stand-in ignores CLI arguments, so quick mode
//! (CI's `-- --test` smoke run) is detected here: it drops the 1M-row
//! scale and shrinks the sample count to keep the smoke step fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parjoin_common::{hash, sort, Relation};
use parjoin_engine::prepare::sorted_by_columns_parallel;

/// True when invoked as a smoke test (`cargo bench ... -- --test`); the
/// stub harness forwards but does not interpret the flag.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

/// `rows` rows of `arity` columns drawn from a bounded node-id domain.
fn node_rows(rows: usize, arity: usize, seed: u64) -> Vec<u64> {
    let domain = (rows as u64 / 2).max(16);
    (0..rows * arity)
        .map(|i| hash::hash64(i as u64, seed) % domain)
        .collect()
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    let scales: &[usize] = if quick_mode() {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    for &rows in scales {
        for arity in [2usize, 3] {
            let flat = node_rows(rows, arity, 13 + arity as u64);
            let rel = Relation::from_flat(arity, flat.clone());
            let cols: Vec<usize> = (0..arity).collect();
            let label = format!("{rows}x{arity}");
            group.throughput(Throughput::Elements(rows as u64));
            group.bench_with_input(BenchmarkId::new("comparator", &label), &flat, |b, data| {
                b.iter(|| {
                    let idx = sort::sorted_indices_comparator(data, arity, 0, rows);
                    sort::gather(data, arity, &idx).len()
                });
            });
            group.bench_with_input(BenchmarkId::new("radix", &label), &flat, |b, data| {
                b.iter(|| {
                    let idx = sort::sorted_indices_radix(data, arity, 0, rows);
                    sort::gather(data, arity, &idx).len()
                });
            });
            // The thread count a 4-worker cluster on this host would get
            // per worker, floored at 2 so the parallel path always runs.
            let threads = std::thread::available_parallelism()
                .map(|p| (p.get() / 4).max(2))
                .unwrap_or(2);
            group.bench_with_input(
                BenchmarkId::new(format!("parallel_t{threads}"), &label),
                &rel,
                |b, r| {
                    b.iter(|| sorted_by_columns_parallel(r, &cols, threads).len());
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(if quick_mode() { 2 } else { 10 });
    targets = bench_sort
}
criterion_main!(benches);
