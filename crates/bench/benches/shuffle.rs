//! Shuffle throughput: regular vs broadcast vs hypercube routing over a
//! 64-worker cluster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parjoin_core::hypercube::HcConfig;
use parjoin_datagen::graph;
use parjoin_engine::dist::DistRel;
use parjoin_engine::shuffle;
use parjoin_query::VarId;

fn v(i: u32) -> VarId {
    VarId(i)
}

fn bench_shuffles(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle");
    let g = graph::twitter_graph(20_000, 5, 3);
    let dist = DistRel::round_robin(&g, vec![v(0), v(1)], 64);
    group.throughput(Throughput::Elements(g.len() as u64));

    group.bench_with_input(BenchmarkId::new("regular_h(y)", g.len()), &dist, |b, d| {
        b.iter(|| shuffle::regular(d, &[v(1)], "bench", 1));
    });
    group.bench_with_input(BenchmarkId::new("broadcast", g.len()), &dist, |b, d| {
        b.iter(|| shuffle::broadcast(d, "bench"));
    });
    let cfg = HcConfig::new(vec![v(0), v(1), v(2)], vec![4, 4, 4]);
    group.bench_with_input(
        BenchmarkId::new("hypercube_4x4x4", g.len()),
        &dist,
        |b, d| {
            b.iter(|| shuffle::hypercube(d, &cfg, "bench", 1));
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_shuffles
}
criterion_main!(benches);
