//! Latency of the share-optimization algorithms — validating the paper's
//! claim that Algorithm 1 "computes the hypercube configuration in under
//! 100 msec" for Q1–Q4 at 64 workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parjoin_core::hypercube::ShareProblem;
use parjoin_datagen::all_queries;

fn problems() -> Vec<(&'static str, ShareProblem)> {
    // Paper-scale cardinalities: 1.1M-ish per atom; the algorithm's cost
    // depends only on the number of variables/atoms, not the data.
    all_queries()
        .into_iter()
        .take(4)
        .map(|spec| {
            let cards: Vec<u64> = spec.query.atoms.iter().map(|_| 1_100_000).collect();
            (spec.name, ShareProblem::from_query(&spec.query, &cards))
        })
        .collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypercube_config");
    for (name, p) in problems() {
        group.bench_with_input(BenchmarkId::new("algorithm1_n64", name), &p, |b, p| {
            b.iter(|| p.optimize(64));
        });
        group.bench_with_input(BenchmarkId::new("lp_fractional_n64", name), &p, |b, p| {
            b.iter(|| p.fractional(64));
        });
        group.bench_with_input(BenchmarkId::new("round_down_n64", name), &p, |b, p| {
            b.iter(|| p.round_down(64));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
