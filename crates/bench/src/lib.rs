#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parjoin-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §3 for the full index). Each
//! experiment is a library function under [`experiments`] with a thin
//! binary wrapper in `src/bin/`, so `all_experiments` can replay the
//! whole evaluation in one run.
//!
//! Scales are configurable (`--scale tiny|small|medium` or the `SCALE`
//! env var); absolute numbers differ from the paper's 64-worker cluster,
//! but the comparisons — which configuration wins, by roughly what
//! factor, where the crossovers fall — are the reproduction target
//! (EXPERIMENTS.md records both sides).

pub mod experiments;
pub mod report;

use parjoin_datagen::Scale;

/// Experiment-wide settings parsed from argv/env.
#[derive(Debug, Clone, Copy)]
pub struct Settings {
    /// Dataset scale.
    pub scale: Scale,
    /// Cluster size (the paper's default: 64).
    pub workers: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            scale: Scale::small(),
            workers: 64,
            seed: 42,
        }
    }
}

impl Settings {
    /// Parses `--scale`, `--workers`, `--seed` from argv (and the `SCALE`
    /// env var as a fallback).
    pub fn from_args() -> Self {
        let mut s = Settings::default();
        if let Ok(scale) = std::env::var("SCALE") {
            s.scale = parse_scale(&scale).unwrap_or(s.scale);
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    s.scale = parse_scale(&args[i + 1])
                        .unwrap_or_else(|| panic!("unknown scale `{}`", args[i + 1])); // xtask: allow(panic)
                    i += 2;
                }
                "--workers" => {
                    s.workers = args[i + 1].parse().expect("numeric --workers"); // xtask: allow(expect): bench driver aborts on failure
                    i += 2;
                }
                "--seed" => {
                    s.seed = args[i + 1].parse().expect("numeric --seed"); // xtask: allow(expect): bench driver aborts on failure
                    i += 2;
                }
                _ => i += 1,
            }
        }
        s
    }
}

fn parse_scale(name: &str) -> Option<Scale> {
    match name {
        "tiny" => Some(Scale::tiny()),
        "small" => Some(Scale::small()),
        "medium" => Some(Scale::medium()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settings() {
        let s = Settings::default();
        assert_eq!(s.workers, 64);
    }

    #[test]
    fn scale_parser() {
        assert!(parse_scale("tiny").is_some());
        assert!(parse_scale("small").is_some());
        assert!(parse_scale("medium").is_some());
        assert!(parse_scale("paper").is_none());
    }
}
