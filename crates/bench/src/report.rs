//! Plain-text rendering of experiment results in the shape of the
//! paper's figures (grouped bar charts become aligned tables with ASCII
//! bars) and tables.

use std::time::Duration;

/// One bar of a figure: a label and a value (or FAIL).
pub struct Bar {
    /// Configuration label (e.g. `RS_HJ`).
    pub label: String,
    /// The measured value; `None` renders as `FAIL`.
    pub value: Option<f64>,
}

/// Prints a titled group of bars with values and proportional ASCII bars
/// (the paper's subfigure (a)/(b)/(c) panels).
pub fn print_bars(title: &str, unit: &str, bars: &[Bar]) {
    println!("\n  {title} [{unit}]");
    let max = bars
        .iter()
        .filter_map(|b| b.value)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    for b in bars {
        match b.value {
            Some(v) => {
                let width = ((v / max) * 40.0).round() as usize;
                println!(
                    "    {:<7} {:>12.4} |{}",
                    b.label,
                    v,
                    "#".repeat(width.max(1))
                );
            }
            None => println!("    {:<7} {:>12} |", b.label, "FAIL"),
        }
    }
}

/// Formats a duration as fractional seconds.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Prints a generic aligned table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n  {title}");
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i.min(widths.len() - 1)]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("    {}", fmt_row(&head));
    println!(
        "    {}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
    );
    for row in rows {
        println!("    {}", fmt_row(row));
    }
}

/// Millions, one decimal (the paper reports tuple counts in millions).
pub fn millions(n: u64) -> String {
    format!("{:.2}M", n as f64 / 1e6)
}

/// A minimal JSON value builder — enough to export experiment results
/// for plotting without pulling in a JSON crate.
#[derive(Debug, Clone)]
pub enum Json {
    /// A float (also used for integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
    /// null (e.g. a FAILed configuration).
    Null,
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Null => out.push_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_handle_fail_and_zero() {
        // Smoke: must not panic on edge inputs.
        print_bars(
            "t",
            "s",
            &[
                Bar {
                    label: "A".into(),
                    value: Some(0.0),
                },
                Bar {
                    label: "B".into(),
                    value: None,
                },
            ],
        );
    }

    #[test]
    fn millions_formatting() {
        assert_eq!(millions(13_371_468), "13.37M");
    }

    #[test]
    fn table_alignment_no_panic() {
        print_table("t", &["a", "b"], &[vec!["1".into(), "22".into()]]);
    }

    #[test]
    fn json_serialization() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("HC_TJ".into())),
            ("wall".into(), Json::Num(0.5)),
            ("fail".into(), Json::Null),
            ("xs".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"HC_TJ","wall":0.5,"fail":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn json_escapes_strings() {
        let j = Json::Str("a\"b\\c\nd".into());
        assert_eq!(j.to_string(), r#""a\"b\\c\nd""#);
    }
}
