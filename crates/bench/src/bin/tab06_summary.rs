//! Table 6: summary of the extended evaluation over Q1-Q8.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::summary::run(&settings);
}
