//! Figure 10: Q1 scalability from 2 to 64 workers (HC_TJ vs RS_HJ).
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::scalability::run(&settings);
}
