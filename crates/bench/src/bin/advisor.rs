//! Plan advisor validation: cost-model pick vs measured optimum per query.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::advisor::run(&settings);
}
