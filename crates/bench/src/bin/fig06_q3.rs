//! Figure 6: Freebase co-star cast query (Q3) under all six configurations.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::six_configs::figure(
        "Figure 6",
        &parjoin_datagen::workloads::q3(),
        &settings,
        None,
    );
}
