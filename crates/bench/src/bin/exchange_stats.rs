//! Counter-verified exchange wire-path benchmark (the BENCH_exchange
//! experiment): shuffles two workload shapes through the InProcess
//! streaming transport under each wire variant and reconciles every
//! `runtime.*` counter the zero-copy exchange added.
//!
//! Shapes:
//!
//! * **hashed** — pseudo-random two-column rows, hash-routed: the
//!   generic shuffle shape, where the interesting number is
//!   bytes-*copied*-per-tuple (the owned-encode traffic the vectored
//!   format eliminates).
//! * **sorted** — sorted-run rows, range-routed: the shape a shuffle of
//!   a sorted relation produces and the case delta+varint column
//!   compression is built for.
//!
//! Variants: `varint` (legacy owned-encode framing), `vectored`
//! (zero-copy framing), `vectored_delta` (vectored + column
//! compression). Every run is checked byte-identical against the
//! sequential Local loop, and the acceptance gate requires: vectored
//! copies zero bytes per tuple while varint copies every sent byte;
//! compression shrinks the sorted shuffle >= 1.5x; one receive thread
//! per worker; `tx == rx`; and `buf.allocs + buf.reuses == tx.batches`.
//! Writes a strict-JSON report to `--out` and exits non-zero if any
//! check fails.
//!
//! ```text
//! exchange_stats [--rows N] [--workers N] [--batch N] [--iters N]
//!                [--quick] [--date YYYY-MM-DD] [--out BENCH_exchange.json]
//! ```

use parjoin_common::{hash, Relation, WireFormat};
use parjoin_obs::{Registry, TraceSink};
use parjoin_runtime::{
    local_shuffle, Router, Runtime, RuntimeConfig, RuntimeObs, ShuffleOutcome, TransportKind,
};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    rows: usize,
    workers: usize,
    batch: usize,
    iters: usize,
    date: String,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        rows: 200_000,
        workers: 4,
        batch: 4096,
        iters: 5,
        date: String::new(),
        out: Some("BENCH_exchange.json".to_string()),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--quick" {
            // CI smoke mode: small input, two iterations (two are needed
            // so pool recycling across shuffles is observable), no file.
            args.rows = 20_000;
            args.iters = 2;
            args.out = None;
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--rows" => args.rows = value.parse().map_err(|e| format!("--rows: {e}"))?,
            "--workers" => args.workers = value.parse().map_err(|e| format!("--workers: {e}"))?,
            "--batch" => args.batch = value.parse().map_err(|e| format!("--batch: {e}"))?,
            "--iters" => args.iters = value.parse().map_err(|e| format!("--iters: {e}"))?,
            "--date" => args.date = value.clone(),
            "--out" => args.out = Some(value.clone()),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    if args.iters < 2 {
        return Err("--iters must be >= 2 (pool recycling needs a second shuffle)".into());
    }
    Ok(args)
}

/// Pseudo-random two-column partitions, the generic shuffle shape.
fn hashed_parts(workers: usize, rows: usize) -> Vec<Relation> {
    let mut parts: Vec<Relation> = (0..workers).map(|_| Relation::new(2)).collect();
    for i in 0..rows as u64 {
        parts[(i % workers as u64) as usize].push_row(&[i * 7 % 99_991, i * 13 % 99_989]);
    }
    parts
}

/// Sorted-run partitions: ascending columns, range-partitioned so each
/// destination receives contiguous runs.
fn sorted_parts(workers: usize, rows: usize) -> Vec<Relation> {
    let mut parts: Vec<Relation> = (0..workers).map(|_| Relation::new(2)).collect();
    for i in 0..rows as u64 {
        parts[(i % workers as u64) as usize].push_row(&[i, i * 3]);
    }
    parts
}

struct Measured {
    ms_per_iter: f64,
    bytes_sent: u64,
    bytes_raw: u64,
    copied_bytes: u64,
    batches: u64,
    tuples: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_variant(
    name: &str,
    format: WireFormat,
    compression: bool,
    args: &Args,
    parts: &[Relation],
    router: &Router,
    baseline: &ShuffleOutcome,
) -> Result<Measured, String> {
    let reg = Registry::new();
    let cfg = RuntimeConfig {
        workers: args.workers,
        transport: TransportKind::InProcess,
        batch_tuples: args.batch,
        wire_format: format,
        wire_compression: compression,
        obs: RuntimeObs::on_registry(&reg, TraceSink::disabled()),
        ..RuntimeConfig::default()
    };
    let rt = Runtime::new(cfg).map_err(|e| format!("{name}: {e}"))?;
    let started = Instant::now();
    let mut last = None;
    for _ in 0..args.iters {
        let out = rt
            .shuffle(parts.to_vec(), Arc::clone(router))
            .map_err(|e| format!("{name}: {e}"))?;
        last = Some(out);
    }
    let elapsed = started.elapsed();
    rt.shutdown().map_err(|e| format!("{name}: {e}"))?;
    let out = last.ok_or_else(|| format!("{name}: no iterations ran"))?;

    if out.parts != baseline.parts {
        return Err(format!("{name}: output drifted from the Local loop"));
    }
    let get = |key: &str| reg.get(key).ok_or_else(|| format!("{name}: no {key}"));
    let (tx_bytes, rx_bytes) = (get("runtime.tx.bytes")?, get("runtime.rx.bytes")?);
    let (tx_batches, rx_batches) = (get("runtime.tx.batches")?, get("runtime.rx.batches")?);
    let bytes_raw = get("runtime.tx.bytes_raw")?;
    let copied = reg.get("runtime.tx.copied_bytes").unwrap_or(0);
    let allocs = reg.get("runtime.buf.allocs").unwrap_or(0);
    let reuses = reg.get("runtime.buf.reuses").unwrap_or(0);
    let iters = args.iters as u64;

    if tx_bytes != rx_bytes || tx_batches != rx_batches {
        return Err(format!(
            "{name}: tx/rx disagree ({tx_bytes}/{rx_bytes} bytes, {tx_batches}/{rx_batches} batches)"
        ));
    }
    if get("runtime.rx.decode_errors")? != 0 {
        return Err(format!("{name}: decode errors on a clean stream"));
    }
    if get("runtime.rx.threads")? != (args.workers as u64) * iters {
        return Err(format!("{name}: not one receive thread per worker"));
    }
    // Vectored frames on InProcess are assembled in pooled buffers, one
    // acquire per batch; the legacy varint path sends its owned encode
    // buffer directly and never touches the pool.
    let expected_pool = match format {
        WireFormat::Vectored => tx_batches,
        WireFormat::Varint => 0,
    };
    if allocs + reuses != expected_pool {
        return Err(format!(
            "{name}: pool traffic ({allocs} allocs + {reuses} reuses) != {expected_pool}"
        ));
    }
    if format == WireFormat::Vectored && reuses == 0 {
        return Err(format!(
            "{name}: sequential shuffles recycled no pooled buffers"
        ));
    }
    if compression {
        if bytes_raw < tx_bytes {
            return Err(format!("{name}: raw tally below wire tally"));
        }
    } else if bytes_raw != tx_bytes {
        return Err(format!(
            "{name}: raw ({bytes_raw}) != wire ({tx_bytes}) with compression off"
        ));
    }
    Ok(Measured {
        ms_per_iter: elapsed.as_secs_f64() * 1e3 / args.iters as f64,
        bytes_sent: tx_bytes / iters,
        bytes_raw: bytes_raw / iters,
        copied_bytes: copied / iters,
        batches: tx_batches / iters,
        tuples: out.per_producer.iter().sum(),
    })
}

fn variant_json(m: &Measured) -> String {
    format!(
        "{{ \"ms_per_iter\": {:.3}, \"bytes_sent\": {}, \"bytes_raw\": {}, \"copied_bytes\": {}, \"batches\": {}, \"tuples\": {}, \"copied_bytes_per_tuple\": {:.3} }}",
        m.ms_per_iter,
        m.bytes_sent,
        m.bytes_raw,
        m.copied_bytes,
        m.batches,
        m.tuples,
        m.copied_bytes as f64 / m.tuples as f64
    )
}

fn main() -> ExitCode {
    match bench() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("exchange_stats: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn bench() -> Result<(), String> {
    let args = parse_args()?;
    let workers = args.workers;
    let hashed = hashed_parts(workers, args.rows);
    let sorted = sorted_parts(workers, args.rows);
    let rows = args.rows;
    let hash_route: Router =
        Arc::new(move |_w, row, dests| dests.push(hash::bucket(row[0], 42, workers)));
    let range_route: Router = Arc::new(move |_w, row, dests| {
        dests.push((row[0] as usize * workers / rows).min(workers - 1));
    });
    let hashed_local = local_shuffle(&hashed, &hash_route);
    let sorted_local = local_shuffle(&sorted, &range_route);

    // The copy-traffic A/B on the generic hashed shape.
    let varint = run_variant(
        "hashed/varint",
        WireFormat::Varint,
        false,
        &args,
        &hashed,
        &hash_route,
        &hashed_local,
    )?;
    let vectored = run_variant(
        "hashed/vectored",
        WireFormat::Vectored,
        false,
        &args,
        &hashed,
        &hash_route,
        &hashed_local,
    )?;
    // The compression A/B on the sorted-run shape.
    let raw = run_variant(
        "sorted/vectored",
        WireFormat::Vectored,
        false,
        &args,
        &sorted,
        &range_route,
        &sorted_local,
    )?;
    let delta = run_variant(
        "sorted/vectored_delta",
        WireFormat::Vectored,
        true,
        &args,
        &sorted,
        &range_route,
        &sorted_local,
    )?;

    // Acceptance: the zero-copy and compression claims, counter-verified.
    if vectored.copied_bytes != 0 {
        return Err(format!(
            "vectored path copied {} bytes; zero-copy claim fails",
            vectored.copied_bytes
        ));
    }
    if varint.copied_bytes != varint.bytes_sent {
        return Err("varint path must copy every sent byte".into());
    }
    let ratio = delta.bytes_raw as f64 / delta.bytes_sent as f64;
    if ratio < 1.5 {
        return Err(format!(
            "compression ratio {ratio:.2}x on sorted columns is below the 1.5x gate"
        ));
    }
    if delta.bytes_raw != raw.bytes_sent {
        return Err(
            "compressed run's raw tally must equal the uncompressed run's wire tally".into(),
        );
    }

    let mut report = String::new();
    let _ = writeln!(report, "{{");
    let _ = writeln!(
        report,
        "  \"bench\": \"crates/bench/src/bin/exchange_stats.rs\","
    );
    let _ = writeln!(
        report,
        "  \"command\": \"cargo run --release -p parjoin-bench --bin exchange_stats -- --rows {} --workers {} --batch {} --iters {}\",",
        args.rows, workers, args.batch, args.iters
    );
    if !args.date.is_empty() {
        let _ = writeln!(report, "  \"date\": \"{}\",", args.date);
    }
    let _ = writeln!(
        report,
        "  \"environment\": {{ \"cpu_cores\": {}, \"note\": \"wall-clock ms/iter on a shared vCPU jitters +/- 20-30%; the byte and copy counters are exact and machine-independent\" }},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let _ = writeln!(
        report,
        "  \"kernels\": {{ \"hashed_varint\": \"legacy LEB128 framing: every frame varint-encoded into a fresh owned Vec (runtime.tx.copied_bytes counts it)\", \"hashed_vectored\": \"zero-copy vectored framing: flags+arity+rows header, payload borrowed straight from the relation arena\", \"sorted_vectored\": \"vectored framing on the sorted-run shape (the compression baseline)\", \"sorted_vectored_delta\": \"vectored + column-major zigzag-varint delta compression (PlanOptions::wire_compression)\" }},"
    );
    let _ = writeln!(
        report,
        "  \"data\": {{ \"hashed\": \"{} pseudo-random 2-col rows, hash-routed across {} workers\", \"sorted\": \"{} ascending-run 2-col rows, range-routed\" }},",
        args.rows, workers, args.rows
    );
    let _ = writeln!(report, "  \"results\": {{");
    let _ = writeln!(report, "    \"hashed_varint\": {},", variant_json(&varint));
    let _ = writeln!(
        report,
        "    \"hashed_vectored\": {},",
        variant_json(&vectored)
    );
    let _ = writeln!(report, "    \"sorted_vectored\": {},", variant_json(&raw));
    let _ = writeln!(
        report,
        "    \"sorted_vectored_delta\": {}",
        variant_json(&delta)
    );
    let _ = writeln!(report, "  }},");
    let _ = writeln!(
        report,
        "  \"copied_bytes_per_tuple\": {{ \"varint\": {:.3}, \"vectored\": {:.3} }},",
        varint.copied_bytes as f64 / varint.tuples as f64,
        vectored.copied_bytes as f64 / vectored.tuples as f64
    );
    let _ = writeln!(report, "  \"compression_ratio_sorted\": {ratio:.3},");
    let _ = writeln!(
        report,
        "  \"acceptance\": \"vectored copies 0 bytes/tuple (varint copies {:.2}); delta compression shrinks the sorted shuffle {ratio:.2}x (gate 1.5x); tx == rx, one rx thread per worker, buf.allocs + buf.reuses == tx.batches, and raw == wire with compression off — all counter-verified; every run byte-identical to the Local loop\"",
        varint.copied_bytes as f64 / varint.tuples as f64
    );
    let _ = writeln!(report, "}}");

    match &args.out {
        Some(path) => {
            std::fs::write(path, &report).map_err(|e| format!("write {path}: {e}"))?;
            println!("exchange_stats: OK ({} written)", path);
        }
        None => {
            print!("{report}");
            println!("exchange_stats: OK (quick mode, no file written)");
        }
    }
    Ok(())
}
