//! Figure 14: Twitter two-rings query (Q6) under all six configurations.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::six_configs::figure(
        "Figure 14",
        &parjoin_datagen::workloads::q6(),
        &settings,
        None,
    );
}
