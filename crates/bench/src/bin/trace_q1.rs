//! CI smoke for the observability layer: runs Q1 (the triangle query)
//! as `HC_TJ` over the in-process streaming transport with
//! [`PlanOptions::trace_path`] set, then re-reads the emitted chrome
//! trace and checks it is well-formed — valid JSON, and at least one
//! `shuffle`, `local-join`, `prepare`, and `probe` span on every
//! worker lane plus an `output` span on the coordinator lane. Also
//! cross-checks that the metrics registry reconciles with the legacy
//! counters (`engine.bytes.shuffled` == `runtime.tx.bytes`).
//!
//! Usage: `trace_q1 [--out trace.json] [--workers N] [--seed S]`.
//! Exits non-zero (with a message) on any validation failure, so CI
//! can gate on it; the trace file is left behind as an artifact.

use parjoin_engine::obs::json::summarize_chrome_trace;
use parjoin_engine::obs::COORDINATOR_LANE;
use parjoin_engine::{
    metric_names, run_config, Cluster, JoinAlg, PlanOptions, ShuffleAlg, TransportKind,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match smoke() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace_q1: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn smoke() -> Result<(), String> {
    let mut out = PathBuf::from("trace_q1.json");
    let mut workers = 8usize;
    let mut seed = 42u64;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--out" => out = PathBuf::from(&args[i + 1]),
            "--workers" => {
                workers = args[i + 1]
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--seed" => {
                seed = args[i + 1]
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }

    let spec = parjoin_datagen::workloads::q1();
    let db = parjoin_datagen::Scale::tiny().twitter_db(seed);
    let cluster = Cluster::new(workers).with_transport(TransportKind::InProcess);
    let opts = PlanOptions {
        trace_path: Some(out.clone()),
        ..PlanOptions::default()
    };
    let result = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &opts,
    )
    .map_err(|e| format!("Q1 HC_TJ run failed: {e}"))?;

    print!("{}", result.report());

    // The registry must reconcile exactly with the legacy counters.
    let tx = result.metric("runtime.tx.bytes");
    if tx != Some(result.bytes_shuffled) {
        return Err(format!(
            "runtime.tx.bytes = {tx:?} but bytes_shuffled = {}",
            result.bytes_shuffled
        ));
    }
    if result.metric(metric_names::OUTPUT_TUPLES) != Some(result.output_tuples) {
        return Err("engine.output.tuples does not match output_tuples".into());
    }

    // The trace must parse and carry one span per phase per worker lane.
    let text = std::fs::read_to_string(&out)
        .map_err(|e| format!("cannot read trace {}: {e}", out.display()))?;
    let summary = summarize_chrome_trace(&text)?;
    for w in 0..workers as u64 {
        for phase in ["shuffle", "local-join", "prepare", "probe"] {
            if summary.count(phase, w) == 0 {
                return Err(format!("worker {w} has no `{phase}` span"));
            }
        }
    }
    if summary.count("output", u64::from(COORDINATOR_LANE)) == 0 {
        return Err("coordinator lane has no `output` span".into());
    }

    println!(
        "trace_q1: OK — {} spans across {} worker lanes -> {}",
        summary.total(),
        workers,
        out.display()
    );
    Ok(())
}
