//! Figure 17: Freebase actor-director query (Q8) under all six configurations.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::six_configs::figure(
        "Figure 17",
        &parjoin_datagen::workloads::q8(),
        &settings,
        None,
    );
}
