//! Figure 12 + Table 7: cost model vs measured Tributary-join runtimes.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::order_cost::run(&settings);
}
