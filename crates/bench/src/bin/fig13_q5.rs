//! Figure 13: Twitter rectangle query (Q5) under all six configurations.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::six_configs::figure(
        "Figure 13",
        &parjoin_datagen::workloads::q5(),
        &settings,
        None,
    );
}
