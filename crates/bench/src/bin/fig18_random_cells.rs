//! Figure 18 (Appendix B): random hypercube cell allocation example.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::random_cells::run(&settings);
}
