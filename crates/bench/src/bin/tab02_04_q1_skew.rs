//! Tables 2-4: Q1 shuffle load balance under the three shuffle algorithms.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::skew::run(&settings);
}
