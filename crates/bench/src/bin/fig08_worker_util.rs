//! Figure 8: Q4 worker utilization under HC_TJ vs BR_TJ.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::worker_util::run(&settings);
}
