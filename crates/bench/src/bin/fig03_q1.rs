//! Figure 3: the triangle query (Q1) under all six configurations.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::six_configs::figure(
        "Figure 3",
        &parjoin_datagen::workloads::q1(),
        &settings,
        None,
    );
}
