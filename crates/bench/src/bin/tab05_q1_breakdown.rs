//! Table 5: Q1 local-join operator time breakdown (sorts vs join).
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::breakdown::run(&settings);
}
