//! Replays the paper's entire evaluation: every figure and table, in
//! paper order. `--scale tiny|small|medium` trades fidelity for time;
//! `--json <dir>` additionally writes per-figure JSON for plotting.
use parjoin_bench::experiments::*;
use parjoin_datagen::workloads;
use parjoin_datagen::QuerySpec;

fn json_dir() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

fn figure(
    title: &str,
    spec: &QuerySpec,
    settings: &parjoin_bench::Settings,
    budget: Option<u64>,
    json: &Option<std::path::PathBuf>,
) {
    let results = six_configs::figure(title, spec, settings, budget);
    if let Some(dir) = json {
        std::fs::create_dir_all(dir).expect("create --json dir"); // xtask: allow(expect): bench driver aborts on failure
        let name = title.to_lowercase().replace(' ', "_");
        let path = dir.join(format!("{name}_{}.json", spec.name.to_lowercase()));
        let doc = six_configs::results_json(title, spec, &results);
        std::fs::write(&path, doc.to_string()).expect("write JSON"); // xtask: allow(expect): bench driver aborts on failure
        println!("    (JSON written to {})", path.display());
    }
}

fn main() {
    let settings = parjoin_bench::Settings::from_args();
    let json = json_dir();
    println!(
        "parjoin — full experiment suite (workers={}, seed={})",
        settings.workers, settings.seed
    );

    figure("Figure 3", &workloads::q1(), &settings, None, &json);
    skew::run(&settings);
    breakdown::run(&settings);
    figure("Figure 4", &workloads::q2(), &settings, None, &json);
    figure("Figure 6", &workloads::q3(), &settings, None, &json);
    let q4 = workloads::q4();
    let budget = six_configs::fig09_budget(&q4, &settings);
    figure("Figure 9", &q4, &settings, budget, &json);
    worker_util::run(&settings);
    figure("Figure 13", &workloads::q5(), &settings, None, &json);
    figure("Figure 14", &workloads::q6(), &settings, None, &json);
    figure("Figure 15", &workloads::q7(), &settings, None, &json);
    figure("Figure 17", &workloads::q8(), &settings, None, &json);
    summary::run(&settings);
    semijoin::run(&settings);
    scalability::run(&settings);
    hc_config::run(&settings);
    order_cost::run(&settings);
    random_cells::run(&settings);
    ablation::run(&settings);
    sensitivity::run(&settings);
    advisor::run(&settings);
}
