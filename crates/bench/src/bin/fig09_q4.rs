//! Figure 9: Freebase actor-pairs query (Q4); RS_TJ FAILs on the
//! per-worker memory budget, as in the paper.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    let spec = parjoin_datagen::workloads::q4();
    let budget = parjoin_bench::experiments::six_configs::fig09_budget(&spec, &settings);
    if let Some(b) = budget {
        println!("(per-worker memory budget: {b} tuples — between RS_HJ's and RS_TJ's needs)");
    }
    parjoin_bench::experiments::six_configs::figure("Figure 9", &spec, &settings, budget);
}
