//! Figure 4: the 4-clique query (Q2) under all six configurations.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::six_configs::figure(
        "Figure 4",
        &parjoin_datagen::workloads::q2(),
        &settings,
        None,
    );
}
