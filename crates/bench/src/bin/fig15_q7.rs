//! Figure 15: Freebase Oscar-winners query (Q7) under all six configurations.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::six_configs::figure(
        "Figure 15",
        &parjoin_datagen::workloads::q7(),
        &settings,
        None,
    );
}
