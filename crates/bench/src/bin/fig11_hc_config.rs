//! Figure 11: hypercube configuration algorithms, workload-to-optimal
//! ratios at N = 64, 63, 65 for Q1-Q4.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::hc_config::run(&settings);
}
