//! Ablations: the end-to-end effect of the share optimizer (Algorithm 1)
//! and the variable-order cost model on HC_TJ.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::ablation::run(&settings);
}
