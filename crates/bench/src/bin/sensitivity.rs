//! Sensitivity analyses: per-tuple network cost sweep and degree-skew
//! ablation on Q1.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::sensitivity::run(&settings);
}
