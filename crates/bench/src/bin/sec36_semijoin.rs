//! §3.6: semijoin (GYM) plans vs RS/HC on the acyclic queries.
fn main() {
    let settings = parjoin_bench::Settings::from_args();
    parjoin_bench::experiments::semijoin::run(&settings);
}
