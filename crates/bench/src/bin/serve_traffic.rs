//! Open-loop traffic benchmark for `parjoin-serve` (the BENCH_serve
//! experiment): a long-lived server with a resident catalog answers
//! thousands of mixed Q1–Q8 queries, and we measure what serving buys
//! over batch — cross-query SortCache reuse — plus the latency
//! distribution and admission-control behavior under overload.
//!
//! Protocol (all on one in-process server):
//!
//! 1. **baseline** — every workload query once through
//!    [`parjoin_serve::batch_run`]; the raw output bytes are the truth
//!    every served answer is compared against.
//! 2. **overload probe** — a burst far beyond the admission cap at
//!    maximum rate; verifies excess load is shed with the typed
//!    queue-full rejection (never an error result, never a wrong
//!    answer).
//! 3. **cold phase** — the SortCache is cleared, then half the
//!    workload runs; first arrivals of each query pay the sort.
//! 4. **warm phase** — the other half repeats the same mix against the
//!    now-populated cache; the hit-rate delta between the phases is the
//!    serving payoff.
//!
//! On queue-full the submitter backs off and retries (retries are
//! counted separately from the overload probe's dropped submissions),
//! so every phase-3/4 query completes and is byte-checked. Writes a
//! strict-JSON report to `--out` and exits non-zero if any acceptance
//! condition fails.
//!
//! ```text
//! serve_traffic [--scale tiny|small] [--queries N] [--rate QPS]
//!               [--queue N] [--executors N] [--workers N] [--seed N]
//!               [--date YYYY-MM-DD] [--out BENCH_serve.json]
//! ```

use parjoin_core::queries;
use parjoin_datagen::workloads::Scale;
use parjoin_engine::SortCache;
use parjoin_obs::json;
use parjoin_serve::{
    batch_run, percentile_ms, ServeError, Server, ServerConfig, SessionConfig, Ticket,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    scale: Scale,
    scale_name: String,
    queries: usize,
    rate: f64,
    queue: usize,
    executors: Option<usize>,
    workers: usize,
    seed: u64,
    date: String,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::tiny(),
        scale_name: "tiny".to_string(),
        queries: 1000,
        rate: 0.0,
        queue: 16,
        executors: None,
        workers: 4,
        seed: 11,
        date: String::new(),
        out: "BENCH_serve.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--scale" => {
                args.scale = match value.as_str() {
                    "tiny" => Scale::tiny(),
                    "small" => Scale::small(),
                    other => return Err(format!("unknown scale `{other}` (tiny|small)")),
                };
                args.scale_name = value.clone();
            }
            "--queries" => args.queries = value.parse().map_err(|e| format!("--queries: {e}"))?,
            "--rate" => args.rate = value.parse().map_err(|e| format!("--rate: {e}"))?,
            "--queue" => args.queue = value.parse().map_err(|e| format!("--queue: {e}"))?,
            "--executors" => {
                args.executors = Some(value.parse().map_err(|e| format!("--executors: {e}"))?);
            }
            "--workers" => args.workers = value.parse().map_err(|e| format!("--workers: {e}"))?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--date" => args.date = value.clone(),
            "--out" => args.out = value.clone(),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    Ok(args)
}

struct Baseline {
    raw: Vec<u64>,
    output_tuples: u64,
    config: String,
}

/// Cache counters scraped from the `serve.*` registry at a phase edge.
#[derive(Clone, Copy, Default)]
struct CacheMark {
    hits: u64,
    misses: u64,
    certified: u64,
}

fn mark(server: &Server) -> CacheMark {
    CacheMark {
        hits: server.metric("serve.sortcache.hits").unwrap_or(0),
        misses: server.metric("serve.sortcache.misses").unwrap_or(0),
        certified: server.metric("serve.sortcache.certified_hits").unwrap_or(0),
    }
}

struct PhaseStats {
    completed: usize,
    retries: usize,
    latencies: Vec<Duration>,
    span: Duration,
    hits: u64,
    misses: u64,
    certified: u64,
}

impl PhaseStats {
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn throughput(&self) -> f64 {
        let s = self.span.as_secs_f64();
        if s > 0.0 {
            self.completed as f64 / s
        } else {
            0.0
        }
    }
}

/// Runs `count` mixed queries through `session`, pacing arrivals at
/// `rate` QPS (0 = as fast as admission allows) and retrying
/// queue-full rejections after a short backoff so every query
/// completes. Byte-checks each result against `baselines`.
fn run_phase(
    session: &parjoin_serve::Session,
    server: &Server,
    baselines: &BTreeMap<&'static str, Baseline>,
    count: usize,
    rate: f64,
    name_offset: usize,
) -> Result<PhaseStats, String> {
    let before = mark(server);
    let interval = if rate > 0.0 {
        Duration::from_secs_f64(1.0 / rate)
    } else {
        Duration::ZERO
    };
    let t0 = Instant::now();
    let mut tickets: Vec<(&str, Ticket)> = Vec::with_capacity(count);
    let mut retries = 0usize;
    for i in 0..count {
        if !interval.is_zero() {
            let due = t0 + interval * (i as u32);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let q = queries::NAMES[(name_offset + i) % queries::NAMES.len()];
        loop {
            match session.submit_named(q) {
                Ok(t) => {
                    tickets.push((q, t));
                    break;
                }
                Err(ServeError::QueueFull { .. }) | Err(ServeError::SessionLimit { .. }) => {
                    retries += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(e) => return Err(format!("{q}: {e}")),
            }
        }
    }
    let mut latencies = Vec::with_capacity(count);
    for (q, ticket) in tickets {
        let outcome = ticket.wait().map_err(|e| format!("{q}: {e}"))?;
        let base = baselines
            .get(q)
            .ok_or_else(|| format!("{q}: no baseline"))?;
        let out = outcome
            .result
            .output
            .as_ref()
            .ok_or_else(|| format!("{q}: no collected output"))?;
        if out.raw() != &base.raw[..] || outcome.result.output_tuples != base.output_tuples {
            return Err(format!("{q}: served output is not byte-identical to batch"));
        }
        latencies.push(outcome.latency);
    }
    let span = t0.elapsed();
    let after = mark(server);
    Ok(PhaseStats {
        completed: latencies.len(),
        retries,
        latencies,
        span,
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        certified: after.certified - before.certified,
    })
}

fn phase_json(s: &PhaseStats) -> String {
    format!(
        "{{ \"completed\": {}, \"retries_on_full\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"throughput_qps\": {:.3}, \"sortcache_hits\": {}, \"sortcache_misses\": {}, \"sortcache_certified_hits\": {}, \"hit_rate\": {:.4} }}",
        s.completed,
        s.retries,
        percentile_ms(&s.latencies, 50.0),
        percentile_ms(&s.latencies, 99.0),
        s.throughput(),
        s.hits,
        s.misses,
        s.certified,
        s.hit_rate()
    )
}

fn main() -> ExitCode {
    match bench() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("serve_traffic: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn bench() -> Result<(), String> {
    let args = parse_args()?;
    let scfg = ServerConfig {
        workers: args.workers,
        seed: args.seed,
        queue_capacity: args.queue,
        session_cap: args.queue + 2,
        executors: args.executors,
    };
    let execs = scfg.effective_executors();
    let server = Server::start(ServerConfig {
        session_cap: args.queue + execs + 2,
        ..scfg
    });
    let t_load = Instant::now();
    server.load_db(&args.scale.twitter_db(7));
    server.load_db(&args.scale.freebase_db(7));
    let load_ms = t_load.elapsed().as_secs_f64() * 1e3;
    println!(
        "catalog v{} resident in {:.1} ms ({} relations, {} scale)",
        server.catalog_version(),
        load_ms,
        server.list().len(),
        args.scale_name
    );

    // Phase 1: batch baselines (also the batch-mode latency reference).
    let cfg = SessionConfig::default();
    let snapshot = server.snapshot();
    let cluster = server.cluster();
    let mut baselines: BTreeMap<&'static str, Baseline> = BTreeMap::new();
    let mut batch_ms: BTreeMap<&'static str, f64> = BTreeMap::new();
    for &name in &queries::NAMES {
        let query = queries::build(name).ok_or_else(|| format!("{name}: not in the registry"))?;
        let t = Instant::now();
        let result = batch_run(&query, &snapshot.db, &cluster, &cfg)
            .map_err(|e| format!("{name}: batch baseline failed: {e}"))?;
        batch_ms.insert(name, t.elapsed().as_secs_f64() * 1e3);
        let out = result
            .output
            .as_ref()
            .ok_or_else(|| format!("{name}: baseline did not collect output"))?;
        baselines.insert(
            name,
            Baseline {
                raw: out.raw().to_vec(),
                output_tuples: result.output_tuples,
                config: result.config.clone(),
            },
        );
    }

    let session = server.session(SessionConfig {
        max_in_flight: Some(args.queue + execs + 2),
        ..SessionConfig::default()
    });

    // Phase 2: overload probe — a burst at max rate far beyond the
    // admission cap (queued slots + executors); excess must be shed
    // with the typed rejection.
    let burst = 4 * (args.queue + execs);
    let mut probe_tickets = Vec::new();
    let mut shed = 0usize;
    for i in 0..burst {
        let q = queries::NAMES[i % queries::NAMES.len()];
        match session.submit_named(q) {
            Ok(t) => probe_tickets.push((q, t)),
            Err(ServeError::QueueFull { .. }) => shed += 1,
            Err(e) => return Err(format!("overload probe: {q}: unexpected {e}")),
        }
    }
    for (q, t) in probe_tickets {
        let outcome = t.wait().map_err(|e| format!("{q}: {e}"))?;
        let out = outcome
            .result
            .output
            .as_ref()
            .ok_or_else(|| format!("{q}: no output"))?;
        if out.raw() != &baselines[q].raw[..] {
            return Err(format!("{q}: overload-probe output drifted from batch"));
        }
    }
    if shed == 0 {
        return Err(format!(
            "overload probe: a {burst}-query burst never overflowed a {}-slot queue",
            args.queue
        ));
    }
    println!(
        "overload probe: {}/{} shed with typed queue-full, remainder byte-identical",
        shed, burst
    );

    // Phases 3 and 4: cold vs warm. The baselines above already warmed
    // the cache, so clear it to make the cold phase honestly cold.
    SortCache::global().clear();
    let cold_n = args.queries / 2;
    let warm_n = args.queries - cold_n;
    let cold = run_phase(&session, &server, &baselines, cold_n, args.rate, 0)?;
    println!(
        "cold phase: {} queries, p50 {:.1} ms, p99 {:.1} ms, {:.2} qps, hit rate {:.2}%",
        cold.completed,
        percentile_ms(&cold.latencies, 50.0),
        percentile_ms(&cold.latencies, 99.0),
        cold.throughput(),
        100.0 * cold.hit_rate()
    );
    let warm = run_phase(&session, &server, &baselines, warm_n, args.rate, cold_n)?;
    println!(
        "warm phase: {} queries, p50 {:.1} ms, p99 {:.1} ms, {:.2} qps, hit rate {:.2}%",
        warm.completed,
        percentile_ms(&warm.latencies, 50.0),
        percentile_ms(&warm.latencies, 99.0),
        warm.throughput(),
        100.0 * warm.hit_rate()
    );
    server.shutdown();

    let total_completed = cold.completed + warm.completed;
    if total_completed < args.queries {
        return Err(format!(
            "only {total_completed}/{} queries completed",
            args.queries
        ));
    }
    if warm.hit_rate() <= cold.hit_rate() {
        return Err(format!(
            "no SortCache hit-rate improvement: cold {:.4} vs warm {:.4}",
            cold.hit_rate(),
            warm.hit_rate()
        ));
    }

    // The report document.
    let mut per_query = String::new();
    for (i, (&name, base)) in baselines.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            per_query,
            "{sep}\"{name}\": {{ \"config\": \"{}\", \"output_tuples\": {}, \"batch_ms\": {:.3} }}",
            base.config, base.output_tuples, batch_ms[name]
        );
    }
    let doc = format!(
        "{{\n  \"bench\": \"crates/bench/src/bin/serve_traffic.rs\",\n  \"command\": \"cargo run --release -p parjoin-bench --bin serve_traffic -- --scale {} --queries {} --queue {} --seed {}\",\n  \"date\": \"{}\",\n  \"environment\": {{ \"cpu_cores\": {}, \"executors\": {}, \"workers_per_query\": {} }},\n  \"catalog\": {{ \"version\": {}, \"relations\": {}, \"load_ms\": {:.1} }},\n  \"admission\": {{ \"queue_capacity\": {}, \"overload_burst\": {}, \"shed_queue_full\": {} }},\n  \"per_query_batch_baseline\": {{ {} }},\n  \"phases\": {{\n    \"cold\": {},\n    \"warm\": {}\n  }},\n  \"acceptance\": \"{} mixed Q1-Q8 queries served byte-identical to batch; overload shed {}/{} with the typed queue-full rejection; SortCache hit rate {:.1}% cold vs {:.1}% warm on the repeated-query phase\"\n}}\n",
        args.scale_name,
        args.queries,
        args.queue,
        args.seed,
        args.date,
        std::thread::available_parallelism().map_or(0, |n| n.get()),
        args.executors
            .map_or_else(|| "null".to_string(), |e| e.to_string()),
        args.workers,
        server.catalog_version(),
        server.list().len(),
        load_ms,
        args.queue,
        burst,
        shed,
        per_query,
        phase_json(&cold),
        phase_json(&warm),
        total_completed,
        shed,
        burst,
        100.0 * cold.hit_rate(),
        100.0 * warm.hit_rate()
    );
    json::parse(&doc).map_err(|e| format!("internal error: report is not strict JSON: {e}"))?;
    std::fs::write(&args.out, &doc).map_err(|e| format!("writing {}: {e}", args.out))?;
    println!("wrote {}", args.out);
    Ok(())
}
