//! Ablations: how much of HC_TJ's win comes from each design choice?
//!
//! 1. **Share optimizer** — run HC_TJ with Algorithm 1's configuration vs
//!    the naïve round-down configuration (the end-to-end consequence of
//!    Figure 11's workload ratios).
//! 2. **Variable-order optimizer** — run HC_TJ with the §5 cost-model
//!    order vs the worst sampled order (the end-to-end consequence of
//!    Table 7).

use crate::experiments::hc_config::share_problem;
use crate::report::print_table;
use crate::Settings;
use parjoin_core::order::{sample_orders, OrderCostModel};
use parjoin_datagen::QuerySpec;
use parjoin_engine::{run_config, Cluster, JoinAlg, PlanOptions, RunResult, ShuffleAlg};
use parjoin_query::resolve_atoms;

fn run_hc_tj(
    spec: &QuerySpec,
    db: &parjoin_common::Database,
    settings: &Settings,
    opts: &PlanOptions,
    workers: usize,
) -> RunResult {
    let cluster = Cluster::new(workers).with_seed(settings.seed);
    run_config(
        &spec.query,
        db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        opts,
    )
    .expect("HC_TJ runs") // xtask: allow(expect): bench driver aborts on failure
}

/// Ablation 1: Algorithm 1 vs round-down shares, end to end. Uses N = 63
/// workers, where rounding loss is visible (64 is a perfect cube for Q1).
pub fn share_optimizer(settings: &Settings) {
    println!("\n=== Ablation: Algorithm 1 vs round-down shares (end-to-end HC_TJ) ===");
    let workers = 63;
    let mut rows = Vec::new();
    for spec in [
        parjoin_datagen::workloads::q1(),
        parjoin_datagen::workloads::q2(),
    ] {
        let db = settings.scale.db_for(spec.dataset, settings.seed);
        let problem = share_problem(&spec, settings);
        let ours = run_hc_tj(&spec, &db, settings, &PlanOptions::default(), workers);
        let naive_cfg = problem.round_down(workers);
        let naive = run_hc_tj(
            &spec,
            &db,
            settings,
            &PlanOptions {
                hc_config: Some(naive_cfg.clone()),
                ..Default::default()
            },
            workers,
        );
        rows.push(vec![
            spec.name.to_string(),
            format!(
                "{}",
                ours.hc_config.as_ref().expect("HC run records its config") // xtask: allow(expect): bench driver aborts on failure
            ),
            format!("{:.4}s", ours.wall.as_secs_f64()),
            format!("{naive_cfg}"),
            format!("{:.4}s", naive.wall.as_secs_f64()),
            format!(
                "{:.2}x",
                naive.wall.as_secs_f64() / ours.wall.as_secs_f64().max(1e-12)
            ),
        ]);
        assert_eq!(ours.output_tuples, naive.output_tuples);
    }
    print_table(
        &format!("N = {workers} workers"),
        &[
            "query",
            "Alg.1 config",
            "wall",
            "round-down config",
            "wall",
            "slowdown",
        ],
        &rows,
    );
}

/// Ablation 2: cost-model variable order vs the worst sampled order.
pub fn order_optimizer(settings: &Settings) {
    println!("\n=== Ablation: cost-model TJ order vs worst sampled order (end-to-end HC_TJ) ===");
    let mut rows = Vec::new();
    for spec in [
        parjoin_datagen::workloads::q1(),
        parjoin_datagen::workloads::q8(),
    ] {
        // A pathological Q8 order can run minutes even split 64 ways;
        // shrink its catalog so the ablation stays interactive.
        let mut scale = settings.scale;
        if spec.name == "Q8" {
            scale.freebase_performances = scale.freebase_performances.min(6_000);
        }
        let db = scale.db_for(spec.dataset, settings.seed);
        let (resolved, _) = resolve_atoms(&spec.query, &db).expect("resolves"); // xtask: allow(expect): bench driver aborts on failure
        let model_atoms: Vec<(&parjoin_common::Relation, Vec<parjoin_query::VarId>)> = resolved
            .iter()
            .map(|a| (a.rel.as_ref(), a.vars.clone()))
            .collect();
        let model = OrderCostModel::from_atoms(&model_atoms);
        let vars = spec.query.all_vars();
        let sampled = sample_orders(&vars, 20, settings.seed);
        let worst = sampled
            .iter()
            .max_by(|a, b| model.cost(a).partial_cmp(&model.cost(b)).expect("finite")) // xtask: allow(expect): bench driver aborts on failure
            .expect("non-empty") // xtask: allow(expect): bench driver aborts on failure
            .clone();

        let good = run_hc_tj(
            &spec,
            &db,
            settings,
            &PlanOptions::default(),
            settings.workers,
        );
        let bad = run_hc_tj(
            &spec,
            &db,
            settings,
            &PlanOptions {
                tj_order: Some(worst),
                ..Default::default()
            },
            settings.workers,
        );
        assert_eq!(good.output_tuples, bad.output_tuples);
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.4}s", good.wall.as_secs_f64()),
            format!("{:.4}s", bad.wall.as_secs_f64()),
            format!(
                "{:.1}x",
                bad.wall.as_secs_f64() / good.wall.as_secs_f64().max(1e-12)
            ),
        ]);
    }
    print_table(
        "HC_TJ wall clock",
        &[
            "query",
            "cost-model order",
            "worst sampled order",
            "slowdown",
        ],
        &rows,
    );
}

/// Ablation 3: heavy-hitter-resilient regular shuffle (paper footnote 2)
/// vs plain hashing on the skew-dominated Q1 plan.
pub fn skew_shuffle(settings: &Settings) {
    println!("\n=== Ablation: heavy-hitter-resilient regular shuffle (Q1, RS_HJ) ===");
    let spec = parjoin_datagen::workloads::q1();
    let db = settings.scale.twitter_db(settings.seed);
    let cluster = Cluster::new(settings.workers).with_seed(settings.seed);
    let base = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &PlanOptions::default(),
    )
    .expect("RS_HJ"); // xtask: allow(expect): bench driver aborts on failure
    let resilient = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &PlanOptions {
            skew_resilient: true,
            ..Default::default()
        },
    )
    .expect("RS_HJ + skew handling"); // xtask: allow(expect): bench driver aborts on failure
    let peak = |r: &RunResult| {
        r.shuffles
            .iter()
            .map(|s| *s.per_consumer.iter().max().unwrap_or(&0))
            .max()
            .unwrap_or(0)
    };
    let rows = vec![
        vec![
            "plain hashing".into(),
            format!("{:.4}s", base.wall.as_secs_f64()),
            base.tuples_shuffled.to_string(),
            peak(&base).to_string(),
        ],
        vec![
            "heavy-hitter resilient".into(),
            format!("{:.4}s", resilient.wall.as_secs_f64()),
            resilient.tuples_shuffled.to_string(),
            peak(&resilient).to_string(),
        ],
    ];
    print_table(
        "RS_HJ with and without hot-key handling",
        &[
            "shuffle",
            "wall",
            "tuples shuffled",
            "max received by one worker",
        ],
        &rows,
    );
    println!(
        "    (footnote 2 of the paper: engines that special-case heavy hitters\n              close part of the gap; the HyperCube shuffle gets the same resilience\n              for free by hashing every variable into only p^(1/k) buckets.)"
    );
}

/// Runs all ablations.
pub fn run(settings: &Settings) {
    share_optimizer(settings);
    order_optimizer(settings);
    skew_shuffle(settings);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::Scale;

    #[test]
    fn smoke() {
        run(&Settings {
            scale: Scale::tiny(),
            workers: 8,
            seed: 1,
        });
    }
}
