//! §3.6: distributed semijoin (GYM) plans vs regular and HyperCube
//! shuffles on the acyclic queries Q3 and Q7.

use crate::report::print_table;
use crate::Settings;
use parjoin_engine::semijoin::run_semijoin_plan;
use parjoin_engine::{run_config, Cluster, JoinAlg, PlanOptions, ShuffleAlg};
use std::time::Duration;

/// Runs the comparison and prints per-query rows.
pub fn run(settings: &Settings) {
    println!("\n=== §3.6: semijoin (GYM) plans on the acyclic queries ===");
    // The paper charges each extra communication round its
    // synchronization cost; model it with a fixed per-round latency so
    // the semijoin's longer pipeline ("2.5x more operators") shows up.
    let round_latency = Duration::from_millis(2);
    let cluster = Cluster::new(settings.workers)
        .with_seed(settings.seed)
        .with_round_latency(round_latency);
    let opts = PlanOptions::default();

    for spec in [
        parjoin_datagen::workloads::q3(),
        parjoin_datagen::workloads::q7(),
    ] {
        let db = settings.scale.db_for(spec.dataset, settings.seed);
        let rs = run_config(
            &spec.query,
            &db,
            &cluster,
            ShuffleAlg::Regular,
            JoinAlg::Hash,
            &opts,
        )
        .expect("RS_HJ"); // xtask: allow(expect): bench driver aborts on failure
        let hc = run_config(
            &spec.query,
            &db,
            &cluster,
            ShuffleAlg::HyperCube,
            JoinAlg::Tributary,
            &opts,
        )
        .expect("HC_TJ"); // xtask: allow(expect): bench driver aborts on failure
        let sj = run_semijoin_plan(&spec.query, &db, &cluster, &opts).expect("acyclic"); // xtask: allow(expect): bench driver aborts on failure

        let rows = vec![
            vec![
                "RS_HJ".into(),
                format!("{:.4}s", rs.wall.as_secs_f64()),
                rs.tuples_shuffled.to_string(),
                rs.rounds.to_string(),
            ],
            vec![
                "HC_TJ".into(),
                format!("{:.4}s", hc.wall.as_secs_f64()),
                hc.tuples_shuffled.to_string(),
                hc.rounds.to_string(),
            ],
            vec![
                "SJ_HJ".into(),
                format!("{:.4}s", sj.run.wall.as_secs_f64()),
                sj.run.tuples_shuffled.to_string(),
                sj.run.rounds.to_string(),
            ],
        ];
        print_table(
            &format!("{} (round latency {:?})", spec.name, round_latency),
            &["plan", "wall", "tuples shuffled", "rounds"],
            &rows,
        );
        println!(
            "    semijoin shuffles: {} projected-key tuples + {} input tuples",
            sj.projected_tuples_shuffled, sj.input_tuples_shuffled
        );
    }
    println!(
        "    (paper: the semijoin reduction never pays off on this workload — the\n     \
         extra rounds cancel the dangling-tuple savings; Q3 RS shuffles 7.18M vs\n     \
         semijoin 2.29M projected + 6.57M input tuples.)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::Scale;

    #[test]
    fn smoke() {
        run(&Settings {
            scale: Scale::tiny(),
            workers: 4,
            seed: 1,
        });
    }
}
