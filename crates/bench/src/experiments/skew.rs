//! Tables 2–4: per-shuffle load balance for Q1 under the three shuffle
//! algorithms (tuples sent, producer skew, consumer skew).

use crate::report::print_table;
use crate::Settings;
use parjoin_engine::{run_config, Cluster, JoinAlg, PlanOptions, RunResult, ShuffleAlg};

fn shuffle_table(title: &str, r: &RunResult) {
    let mut rows: Vec<Vec<String>> = r
        .shuffles
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                s.tuples_sent.to_string(),
                format!("{:.2}", s.producer_skew()),
                format!("{:.2}", s.consumer_skew()),
            ]
        })
        .collect();
    rows.push(vec![
        "Total".into(),
        r.tuples_shuffled.to_string(),
        "N.A.".into(),
        "N.A.".into(),
    ]);
    print_table(
        title,
        &["shuffle", "tuples sent", "producer skew", "consumer skew"],
        &rows,
    );
}

/// Runs Q1 under RS/HCS/BR and prints the three load-balance tables.
pub fn run(settings: &Settings) {
    let spec = parjoin_datagen::workloads::q1();
    let db = settings.scale.twitter_db(settings.seed);
    let cluster = Cluster::new(settings.workers).with_seed(settings.seed);
    let opts = PlanOptions::default();

    println!("\n=== Tables 2-4: Q1 shuffle load balance ===");
    println!("  Twitter edges: {}", db.expect("Twitter").len()); // xtask: allow(expect): bench driver aborts on failure

    let rs = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &opts,
    )
    .expect("RS"); // xtask: allow(expect): bench driver aborts on failure
    shuffle_table("Table 2: regular shuffles", &rs);

    let hc = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &opts,
    )
    .expect("HC"); // xtask: allow(expect): bench driver aborts on failure
    shuffle_table("Table 3: HyperCube shuffles", &hc);

    let br = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Broadcast,
        JoinAlg::Hash,
        &opts,
    )
    .expect("BR"); // xtask: allow(expect): bench driver aborts on failure
    shuffle_table("Table 4: broadcast shuffles", &br);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::Scale;

    #[test]
    fn smoke_at_tiny_scale() {
        let settings = Settings {
            scale: Scale::tiny(),
            workers: 8,
            seed: 1,
        };
        run(&settings);
    }
}
