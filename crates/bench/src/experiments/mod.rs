//! One module per paper experiment; every module exposes
//! `run(&Settings)`. DESIGN.md §3 maps figures/tables to these modules.

pub mod ablation;
pub mod advisor;
pub mod breakdown;
pub mod hc_config;
pub mod order_cost;
pub mod random_cells;
pub mod scalability;
pub mod semijoin;
pub mod sensitivity;
pub mod six_configs;
pub mod skew;
pub mod summary;
pub mod worker_util;
