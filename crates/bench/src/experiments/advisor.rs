//! The plan advisor vs. exhaustive measurement: does the cost model pick
//! the right configuration per query? (The paper's summary — "there is no
//! overall best query plan" — implies an optimizer must choose; this is
//! that optimizer, validated.)

use crate::experiments::six_configs::{run_six, scale_for};
use crate::report::print_table;
use crate::Settings;
use parjoin_datagen::all_queries;
use parjoin_engine::{advise, Cluster};

/// Runs the advisor against measured results for all eight queries.
pub fn run(settings: &Settings) {
    println!("\n=== Plan advisor vs measured best (all queries) ===");
    let mut rows = Vec::new();
    let mut good_picks = 0;
    for spec in all_queries() {
        let scale = scale_for(spec.name, settings.scale);
        let db = scale.db_for(spec.dataset, settings.seed);
        let cluster = Cluster::new(settings.workers).with_seed(settings.seed);
        let advice = advise(&spec.query, &db, &cluster);
        let picked_name =
            format!("{:?}_{:?}", advice.shuffle, advice.join).replace("Regular", "RS");

        let results = run_six(&spec, &db, &cluster);
        let (best_name, best_wall) = results
            .iter()
            .filter_map(|(n, r)| r.as_ref().ok().map(|r| (*n, r.wall)))
            .min_by_key(|(_, w)| *w)
            .expect("some plan succeeds"); // xtask: allow(expect): bench driver aborts on failure
        let picked_wall = results
            .iter()
            .find(|(n, _)| {
                let (s, j) = match *n {
                    "RS_HJ" => (
                        parjoin_engine::ShuffleAlg::Regular,
                        parjoin_engine::JoinAlg::Hash,
                    ),
                    "RS_TJ" => (
                        parjoin_engine::ShuffleAlg::Regular,
                        parjoin_engine::JoinAlg::Tributary,
                    ),
                    "BR_HJ" => (
                        parjoin_engine::ShuffleAlg::Broadcast,
                        parjoin_engine::JoinAlg::Hash,
                    ),
                    "BR_TJ" => (
                        parjoin_engine::ShuffleAlg::Broadcast,
                        parjoin_engine::JoinAlg::Tributary,
                    ),
                    "HC_HJ" => (
                        parjoin_engine::ShuffleAlg::HyperCube,
                        parjoin_engine::JoinAlg::Hash,
                    ),
                    _ => (
                        parjoin_engine::ShuffleAlg::HyperCube,
                        parjoin_engine::JoinAlg::Tributary,
                    ),
                };
                s == advice.shuffle && j == advice.join
            })
            .and_then(|(_, r)| r.as_ref().ok().map(|r| r.wall))
            .unwrap_or_default();

        let overhead = picked_wall.as_secs_f64() / best_wall.as_secs_f64().max(1e-12);
        if overhead <= 2.0 {
            good_picks += 1;
        }
        rows.push(vec![
            spec.name.to_string(),
            format!("{:?}/{:?}", advice.shuffle, advice.join),
            format!("{:.4}s", picked_wall.as_secs_f64()),
            best_name.to_string(),
            format!("{:.4}s", best_wall.as_secs_f64()),
            format!("{overhead:.2}x"),
        ]);
        let _ = picked_name;
    }
    print_table(
        "advisor pick vs measured optimum",
        &[
            "query",
            "advisor",
            "wall",
            "measured best",
            "wall",
            "pick/best",
        ],
        &rows,
    );
    println!(
        "    advisor within 2x of the measured best on {good_picks}/8 queries\n    \
         (the paper's Table 6 message: the crossover between RS and HC depends\n     \
         on intermediate sizes and skew — which is what the advisor estimates)."
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::Scale;

    #[test]
    fn smoke() {
        run(&Settings {
            scale: Scale::tiny(),
            workers: 8,
            seed: 1,
        });
    }
}
