//! Table 5: where local-join time goes in Q1 — under BR_TJ the sorts
//! dominate ("all sorts … 73%"), which is the paper's argument for
//! pairing the Tributary join with the HyperCube shuffle (less data per
//! worker ⇒ less to sort).

use crate::report::print_table;
use crate::Settings;
use parjoin_engine::{run_config, Cluster, JoinAlg, PlanOptions, ShuffleAlg};

/// Runs Q1 under BR_TJ / HC_TJ / BR_HJ and prints the sort/join split.
pub fn run(settings: &Settings) {
    let spec = parjoin_datagen::workloads::q1();
    let db = settings.scale.twitter_db(settings.seed);
    let cluster = Cluster::new(settings.workers).with_seed(settings.seed);
    let opts = PlanOptions::default();

    println!("\n=== Table 5: Q1 operator time in the local join ===");
    let mut rows = Vec::new();
    for (name, s, j) in [
        ("BR_TJ", ShuffleAlg::Broadcast, JoinAlg::Tributary),
        ("HC_TJ", ShuffleAlg::HyperCube, JoinAlg::Tributary),
        ("BR_HJ", ShuffleAlg::Broadcast, JoinAlg::Hash),
    ] {
        let r = run_config(&spec.query, &db, &cluster, s, j, &opts).expect(name); // xtask: allow(expect): bench driver aborts on failure
        let pp = r.prep_probe();
        let sort = pp.prep.as_secs_f64();
        let join = pp.probe.as_secs_f64();
        // The paper's Table 5 reports contribution to *local join* time
        // (the shuffle/network phases are excluded).
        let total = (sort + join).max(1e-12);
        let cache = if r.sort_cache_hits + r.sort_cache_misses > 0 {
            format!(
                " [sort-cache {}h/{}m]",
                r.sort_cache_hits, r.sort_cache_misses
            )
        } else {
            String::new()
        };
        rows.push(vec![
            format!("{name}: all sorts (prep){cache}"),
            format!("{:.3}s", sort),
            format!("{:.0}%", 100.0 * pp.prep_fraction()),
        ]);
        rows.push(vec![
            format!("{name}: join (probe)"),
            format!("{:.3}s", join),
            format!("{:.0}%", 100.0 * join / total),
        ]);
    }
    print_table(
        "operator times (total CPU across workers)",
        &["operator(s)", "total time", "contribution"],
        &rows,
    );
    println!(
        "    (paper: BR_TJ sorts take 73% of local-join time; the join itself 19%.\n     \
         HC_TJ sorts only 1/16th of the data per worker, collapsing the sort cost.)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::Scale;

    #[test]
    fn smoke_at_tiny_scale() {
        run(&Settings {
            scale: Scale::tiny(),
            workers: 4,
            seed: 1,
        });
    }
}
