//! Table 6: the summary of the extended evaluation — all eight queries,
//! their shapes, shuffle volumes under RS vs HC, RS skew, the
//! RS_HJ/HC_TJ runtime ratio, and the winning configuration.

use crate::experiments::six_configs::{run_six, scale_for};
use crate::report::{millions, print_table};
use crate::Settings;
use parjoin_datagen::all_queries;
use parjoin_engine::Cluster;

/// Runs the whole workload and prints Table 6.
pub fn run(settings: &Settings) {
    println!("\n=== Table 6: summary of the extended evaluation ===");
    let mut rows = Vec::new();
    for spec in all_queries() {
        let scale = scale_for(spec.name, settings.scale);
        let db = scale.db_for(spec.dataset, settings.seed);
        let cluster = Cluster::new(settings.workers).with_seed(settings.seed);
        let results = run_six(&spec, &db, &cluster);
        let get = |name: &str| {
            results
                .iter()
                .find(|(n, _)| *n == name)
                .and_then(|(_, r)| r.as_ref().ok())
        };

        let input: u64 = spec
            .query
            .atoms
            .iter()
            .map(|a| db.expect(&a.relation).len() as u64) // xtask: allow(expect): bench driver aborts on failure
            .sum();
        let rs = get("RS_HJ");
        let hc = get("HC_TJ");
        let rs_size = rs.map(|r| r.tuples_shuffled);
        let hc_size = hc.map(|r| r.tuples_shuffled);
        let rs_skew = rs.map(|r| {
            // Ignore degenerate shuffles (e.g. pushed-down selections of a
            // handful of tuples, whose "skew" is trivially the worker
            // count); the paper's skew column concerns data-bearing
            // shuffles.
            let floor = 10 * settings.workers as u64;
            r.shuffles
                .iter()
                .filter(|s| s.tuples_sent >= floor)
                .map(|s| s.producer_skew().max(s.consumer_skew()))
                .fold(1.0f64, f64::max)
        });
        let ratio = match (rs, hc) {
            (Some(a), Some(b)) => Some(a.wall.as_secs_f64() / b.wall.as_secs_f64().max(1e-12)),
            _ => None,
        };
        let best = results
            .iter()
            .filter_map(|(n, r)| r.as_ref().ok().map(|r| (*n, r.wall)))
            .min_by_key(|(_, w)| *w)
            .map(|(n, _)| n)
            .unwrap_or("-");

        rows.push(vec![
            spec.name.to_string(),
            spec.query.atoms.len().to_string(),
            spec.query.join_vars().len().to_string(),
            if spec.cyclic { "Y" } else { "N" }.to_string(),
            millions(input),
            rs_size.map_or("FAIL".into(), millions),
            hc_size.map_or("FAIL".into(), millions),
            rs_skew.map_or("-".into(), |s| format!("{s:.1}")),
            ratio.map_or("-".into(), |r| format!("{r:.2}")),
            best.to_string(),
        ]);
    }
    print_table(
        "queries grouped as in the paper (Table 6)",
        &[
            "Query",
            "#Tables",
            "#JoinVars",
            "Cyclic",
            "Input",
            "RS size",
            "HC size",
            "RS skew",
            "T(RS_HJ)/T(HC_TJ)",
            "best",
        ],
        &rows,
    );
    println!(
        "    (paper, 1.1M-edge Twitter / full Freebase: HC_TJ wins Q1, Q2, Q5, Q6, Q7;\n     \
         RS wins Q3 and Q8; BR_TJ wins Q4. Shapes, not absolute sizes, are comparable.)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::Scale;

    #[test]
    fn smoke_at_tiny_scale() {
        run(&Settings {
            scale: Scale::tiny(),
            workers: 4,
            seed: 1,
        });
    }
}
