//! The six shuffle×join configuration experiments — Figures 3, 4, 6, 9,
//! 13, 14, 15 and 17: for one query, run `RS_HJ, RS_TJ, BR_HJ, BR_TJ,
//! HC_HJ, HC_TJ` and print the paper's three panels (wall clock, total
//! CPU, tuples shuffled).

use crate::report::{print_bars, secs, Bar, Json};
use crate::Settings;
use parjoin_common::Database;
use parjoin_datagen::{DatasetKind, QuerySpec, Scale};
use parjoin_engine::{
    run_config, Cluster, EngineError, JoinAlg, PlanOptions, RunResult, ShuffleAlg,
};

/// The six configurations in the paper's fixed order.
pub fn configs() -> Vec<(&'static str, ShuffleAlg, JoinAlg)> {
    vec![
        ("RS_HJ", ShuffleAlg::Regular, JoinAlg::Hash),
        ("RS_TJ", ShuffleAlg::Regular, JoinAlg::Tributary),
        ("BR_HJ", ShuffleAlg::Broadcast, JoinAlg::Hash),
        ("BR_TJ", ShuffleAlg::Broadcast, JoinAlg::Tributary),
        ("HC_HJ", ShuffleAlg::HyperCube, JoinAlg::Hash),
        ("HC_TJ", ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ]
}

/// Runs all six configurations.
pub fn run_six(
    spec: &QuerySpec,
    db: &Database,
    cluster: &Cluster,
) -> Vec<(&'static str, Result<RunResult, EngineError>)> {
    configs()
        .into_iter()
        .map(|(name, s, j)| {
            (
                name,
                run_config(&spec.query, db, cluster, s, j, &PlanOptions::default()),
            )
        })
        .collect()
}

/// Per-query scale overrides: the explosive regular-shuffle plans (Q4's
/// 13.9-billion-tuple intermediate in the paper) need smaller inputs to
/// terminate on one machine. EXPERIMENTS.md records the scale per figure.
pub fn scale_for(spec_name: &str, base: Scale) -> Scale {
    match spec_name {
        "Q4" => Scale {
            freebase_performances: 2_500,
            ..base
        },
        "Q5" | "Q6" => Scale {
            twitter_nodes: base.twitter_nodes.min(2_000),
            twitter_m: base.twitter_m.min(4),
            ..base
        },
        _ => base,
    }
}

/// Runs one figure: the six configurations on `spec`, with the paper's
/// three panels. `fail_budget` optionally sets a per-worker memory budget
/// so that over-materializing plans FAIL as in Figure 9.
pub fn figure(
    title: &str,
    spec: &QuerySpec,
    settings: &Settings,
    fail_budget: Option<u64>,
) -> Vec<(&'static str, Result<RunResult, EngineError>)> {
    let scale = scale_for(spec.name, settings.scale);
    let db = scale.db_for(spec.dataset, settings.seed);
    let mut cluster = Cluster::new(settings.workers).with_seed(settings.seed);
    if let Some(b) = fail_budget {
        cluster = cluster.with_memory_budget(b);
    }

    println!("\n=== {title}: {} ({}) ===", spec.name, spec.query.name);
    println!("  {}", spec.query);
    let input: u64 = match spec.dataset {
        DatasetKind::Twitter => {
            let e = db.expect("Twitter").len() as u64; // xtask: allow(expect): bench driver aborts on failure
            println!("  Twitter edges: {e}  ({} workers)", settings.workers);
            e * spec.query.atoms.len() as u64
        }
        DatasetKind::Freebase => {
            let total: u64 = spec
                .query
                .atoms
                .iter()
                .map(|a| db.expect(&a.relation).len() as u64) // xtask: allow(expect): bench driver aborts on failure
                .sum();
            println!(
                "  Freebase atoms total: {total} tuples  ({} workers)",
                settings.workers
            );
            total
        }
    };
    println!("  input size (tuples referenced by atoms): {input}");

    let results = run_six(spec, &db, &cluster);
    if let Some((_, Ok(hc))) = results.iter().find(|(n, _)| *n == "HC_TJ") {
        if let Some(cfg) = &hc.hc_config {
            println!("  hypercube configuration: {cfg}");
        }
    }
    let panel = |name: &str, f: &dyn Fn(&RunResult) -> f64| -> Vec<Bar> {
        let _ = name;
        results
            .iter()
            .map(|(label, r)| Bar {
                label: label.to_string(),
                value: r.as_ref().ok().map(f),
            })
            .collect()
    };
    print_bars(
        "(a) wall clock time",
        "s",
        &panel("wall", &|r| secs(r.wall)),
    );
    print_bars(
        "(b) total CPU time",
        "s",
        &panel("cpu", &|r| secs(r.total_cpu)),
    );
    print_bars(
        "(c) tuples shuffled",
        "tuples",
        &panel("shuffled", &|r| r.tuples_shuffled as f64),
    );
    for (label, r) in &results {
        match r {
            Ok(r) => println!("    {label}: {} output tuples", r.output_tuples),
            Err(e) => println!("    {label}: FAIL ({e})"),
        }
    }
    results
}

/// Serializes a six-config result set to JSON (per-config wall/CPU/
/// shuffle metrics plus per-worker busy times), for external plotting.
pub fn results_json(
    figure: &str,
    spec: &QuerySpec,
    results: &[(&'static str, Result<RunResult, EngineError>)],
) -> Json {
    let configs = results
        .iter()
        .map(|(name, r)| {
            let body = match r {
                Ok(r) => Json::Obj(vec![
                    ("wall_s".into(), Json::Num(r.wall.as_secs_f64())),
                    ("cpu_s".into(), Json::Num(r.total_cpu.as_secs_f64())),
                    (
                        "tuples_shuffled".into(),
                        Json::Num(r.tuples_shuffled as f64),
                    ),
                    ("output_tuples".into(), Json::Num(r.output_tuples as f64)),
                    ("rounds".into(), Json::Num(r.rounds as f64)),
                    (
                        "hc_config".into(),
                        r.hc_config
                            .as_ref()
                            .map(|c| Json::Str(c.to_string()))
                            .unwrap_or(Json::Null),
                    ),
                    (
                        "per_worker_busy_s".into(),
                        Json::Arr(
                            r.per_worker_busy
                                .iter()
                                .map(|d| Json::Num(d.as_secs_f64()))
                                .collect(),
                        ),
                    ),
                ]),
                Err(e) => Json::Obj(vec![("fail".into(), Json::Str(e.to_string()))]),
            };
            (name.to_string(), body)
        })
        .collect();
    Json::Obj(vec![
        ("figure".into(), Json::Str(figure.into())),
        ("query".into(), Json::Str(spec.name.into())),
        ("datalog".into(), Json::Str(format!("{}", spec.query))),
        ("configs".into(), Json::Obj(configs)),
    ])
}

/// Figure 9 needs a budget between what RS_HJ and RS_TJ require, so the
/// blocking sort-merge plan FAILs while the pipelined one limps through
/// (the paper's exact outcome). Probes with no budget first.
pub fn fig09_budget(spec: &QuerySpec, settings: &Settings) -> Option<u64> {
    let scale = scale_for(spec.name, settings.scale);
    let db = scale.db_for(spec.dataset, settings.seed);
    let cluster = Cluster::new(settings.workers).with_seed(settings.seed);
    let peak = |s, j| -> Option<u64> {
        run_config(&spec.query, &db, &cluster, s, j, &PlanOptions::default())
            .ok()
            .map(|r| r.peak_worker_tuples)
    };
    let hj = peak(ShuffleAlg::Regular, JoinAlg::Hash)?;
    let tj = peak(ShuffleAlg::Regular, JoinAlg::Tributary)?;
    if tj > hj {
        Some((hj + tj) / 2)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_config_list_matches_paper_order() {
        let names: Vec<&str> = configs().iter().map(|(n, _, _)| *n).collect();
        assert_eq!(
            names,
            vec!["RS_HJ", "RS_TJ", "BR_HJ", "BR_TJ", "HC_HJ", "HC_TJ"]
        );
    }

    #[test]
    fn scale_override_shrinks_q4() {
        let base = Scale::small();
        let q4 = scale_for("Q4", base);
        assert!(q4.freebase_performances < base.freebase_performances);
        let q1 = scale_for("Q1", base);
        assert_eq!(q1.twitter_nodes, base.twitter_nodes);
    }

    #[test]
    fn run_six_agrees_on_small_input() {
        let spec = parjoin_datagen::workloads::q1();
        let db = Scale::tiny().twitter_db(1);
        let cluster = Cluster::new(4);
        let results = run_six(&spec, &db, &cluster);
        let counts: Vec<u64> = results
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().output_tuples)
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}
