//! Figure 8: worker utilization profiles for Q4 under HC_TJ vs BR_TJ —
//! the long-tail workers that make HC_TJ's wall clock worse than BR_TJ's
//! despite lower total CPU.

use crate::experiments::six_configs::scale_for;
use crate::Settings;
use parjoin_engine::{run_config, Cluster, JoinAlg, PlanOptions, RunResult, ShuffleAlg};

fn profile(name: &str, r: &RunResult) {
    let max = r
        .per_worker_busy
        .iter()
        .map(|d| d.as_secs_f64())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    println!(
        "\n  ({name}) per-worker busy time, sorted; wall = {:?}",
        r.wall
    );
    let mut busy: Vec<f64> = r.per_worker_busy.iter().map(|d| d.as_secs_f64()).collect();
    // xtask: allow(expect): bench driver aborts on failure
    busy.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    // Print the 8 busiest and 4 idlest workers (a 64-row dump is noise).
    for (i, b) in busy.iter().take(8).enumerate() {
        println!(
            "    worker #{:<2} {:>9.4}s |{}",
            i,
            b,
            "#".repeat(((b / max) * 40.0) as usize)
        );
    }
    println!("    …");
    for (i, b) in busy.iter().enumerate().skip(busy.len().saturating_sub(4)) {
        println!(
            "    worker #{:<2} {:>9.4}s |{}",
            i,
            b,
            "#".repeat(((b / max) * 40.0) as usize)
        );
    }
    let avg: f64 = busy.iter().sum::<f64>() / busy.len() as f64;
    println!(
        "    straggler factor (max/avg busy): {:.2}",
        max / avg.max(1e-12)
    );
}

/// Runs Q4 under HC_TJ and BR_TJ and prints utilization profiles.
pub fn run(settings: &Settings) {
    let spec = parjoin_datagen::workloads::q4();
    let scale = scale_for(spec.name, settings.scale);
    let db = scale.freebase_db(settings.seed);
    let cluster = Cluster::new(settings.workers).with_seed(settings.seed);
    println!("\n=== Figure 8: Q4 worker utilization (HC_TJ vs BR_TJ) ===");
    let hc = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &PlanOptions::default(),
    )
    .expect("HC_TJ"); // xtask: allow(expect): bench driver aborts on failure
    let br = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Broadcast,
        JoinAlg::Tributary,
        &PlanOptions::default(),
    )
    .expect("BR_TJ"); // xtask: allow(expect): bench driver aborts on failure
    profile("HC_TJ", &hc);
    profile("BR_TJ", &br);
    println!(
        "\n    (paper: HC_TJ shows long-tail workers despite balanced shuffles —\n     \
         computation-time differences remain visible — while BR_TJ is flat.)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::Scale;

    #[test]
    fn smoke_at_tiny_scale() {
        run(&Settings {
            scale: Scale::tiny(),
            workers: 4,
            seed: 1,
        });
    }
}
