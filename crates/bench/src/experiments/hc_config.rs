//! Figure 11: comparing hypercube configuration algorithms — the paper's
//! Algorithm 1 vs LP-round-down vs 4096 random cells — as the ratio of
//! each algorithm's max per-worker workload to the LP's fractional
//! optimum, for Q1–Q4 at N = 64, 63 and 65 workers.

use crate::experiments::six_configs::scale_for;
use crate::report::print_table;
use crate::Settings;
use parjoin_core::hypercube::{cells, CellAllocation, ShareProblem};
use parjoin_datagen::{all_queries, QuerySpec};
use parjoin_query::resolve_atoms;

/// Builds the share problem for a query at the experiment scale
/// (cardinalities after selection pushdown, as the optimizer would see).
pub fn share_problem(spec: &QuerySpec, settings: &Settings) -> ShareProblem {
    let scale = scale_for(spec.name, settings.scale);
    let db = scale.db_for(spec.dataset, settings.seed);
    let (resolved, _) = resolve_atoms(&spec.query, &db).expect("resolves"); // xtask: allow(expect): bench driver aborts on failure
    let cards: Vec<u64> = resolved.iter().map(|a| a.len() as u64).collect();
    ShareProblem::from_query(&spec.query, &cards)
}

/// Runs the comparison and prints one table per cluster size.
pub fn run(settings: &Settings) {
    println!("\n=== Figure 11: hypercube configuration algorithms (workload / optimal) ===");
    let specs: Vec<QuerySpec> = all_queries().into_iter().take(4).collect();
    for n in [64usize, 63, 65] {
        let mut rows = Vec::new();
        for spec in &specs {
            let problem = share_problem(spec, settings);
            let opt = problem.fractional_workload(n);

            let ours = problem.optimize(n);
            let ours_ratio = ours.workload(&problem) / opt;

            let rd = problem.round_down(n);
            let rd_ratio = rd.workload(&problem) / opt;

            let grid = cells::many_cells_grid(&problem, 4096);
            let alloc = CellAllocation::random(grid, n, settings.seed);
            let rand_ratio = alloc.max_workload(&problem) / opt;

            rows.push(vec![
                spec.name.to_string(),
                format!("{ours_ratio:.2}"),
                format!("{rd_ratio:.2}"),
                format!("{rand_ratio:.2}"),
                format!("{ours}"),
            ]);
        }
        print_table(
            &format!("N = {n}"),
            &[
                "query",
                "Our Alg.",
                "Round Down",
                "Random(4096 cells)",
                "our config",
            ],
            &rows,
        );
    }
    println!(
        "    (paper @N=64: Our Alg. 1.00/0.50/1.00/1.06, Round Down 1.00/2.00/1.22/1.41,\n     \
         Random 3.73/5.37/3.99/2.83 for Q1..Q4; ratios below 1 are possible because\n     \
         the LP bound is only optimal within a constant factor.)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::Scale;

    fn tiny_settings() -> Settings {
        Settings {
            scale: Scale::tiny(),
            workers: 64,
            seed: 1,
        }
    }

    #[test]
    fn our_algorithm_never_loses_to_round_down() {
        let settings = tiny_settings();
        for spec in all_queries().into_iter().take(4) {
            let p = share_problem(&spec, &settings);
            for n in [64usize, 63, 65, 15] {
                let ours = p.optimize(n).workload(&p);
                let rd = p.round_down(n).workload(&p);
                assert!(ours <= rd + 1e-9, "{} N={n}: {ours} vs {rd}", spec.name);
            }
        }
    }

    #[test]
    fn random_cells_inflate_workload() {
        let settings = tiny_settings();
        let spec = parjoin_datagen::workloads::q1();
        let p = share_problem(&spec, &settings);
        let ours = p.optimize(64).workload(&p);
        let grid = cells::many_cells_grid(&p, 4096);
        let rand = CellAllocation::random(grid, 64, 7).max_workload(&p);
        assert!(rand > ours, "random {rand} must exceed ours {ours}");
    }

    #[test]
    fn smoke() {
        run(&tiny_settings());
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use parjoin_datagen::Scale;

    /// §3.5: "the optimal configuration of shares is 1×64, which causes
    /// the small relation to be broadcast and the three large relations
    /// to be hash-partitioned" — Q7's hypercube must collapse to a
    /// broadcast-like shape: all share on the variables of the big
    /// star-join relations, share 1 on the tiny selection's variable.
    #[test]
    fn q7_hypercube_detects_broadcast_shape() {
        let settings = Settings {
            scale: Scale::small(),
            workers: 64,
            seed: 42,
        };
        let spec = parjoin_datagen::workloads::q7();
        let p = share_problem(&spec, &settings);
        let cfg = p.optimize(64);
        // Variables: aw, h, a, y. The tiny ObjectName selection binds aw;
        // the three Honor* relations all contain h. The optimizer must
        // put (almost) the whole budget on h.
        let h_dim = cfg
            .dim_of(parjoin_query::VarId(1))
            .expect("h has a dimension");
        assert!(
            cfg.dims()[h_dim] >= 32,
            "expected h to take nearly all shares, got {cfg}"
        );
        let aw_dim = cfg.dim_of(parjoin_query::VarId(0)).expect("aw");
        assert_eq!(cfg.dims()[aw_dim], 1, "tiny selection is broadcast: {cfg}");
    }
}
