//! Figure 10: scalability of HC_TJ vs RS_HJ on Q1 from 2 to 64 workers —
//! (a) speedup relative to 2 workers, (b) total tuples shuffled under HC
//! (grows with the cluster because replication grows), (c) per-worker
//! sort and join time (drops: each worker holds less data even though the
//! cluster as a whole holds more).

use crate::report::print_table;
use crate::Settings;
use parjoin_engine::{run_config, Cluster, JoinAlg, PlanOptions, ShuffleAlg};

/// Runs the sweep and prints the three panels.
pub fn run(settings: &Settings) {
    let spec = parjoin_datagen::workloads::q1();
    let db = settings.scale.twitter_db(settings.seed);
    println!("\n=== Figure 10: Q1 scalability, 2..=64 workers ===");
    println!("  Twitter edges: {}", db.expect("Twitter").len()); // xtask: allow(expect): bench driver aborts on failure

    let workers_axis = [2usize, 4, 8, 16, 32, 64];
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();
    let mut base: Option<(f64, f64)> = None; // (hc_wall@2, rs_wall@2)

    for &w in &workers_axis {
        let cluster = Cluster::new(w).with_seed(settings.seed);
        let hc = run_config(
            &spec.query,
            &db,
            &cluster,
            ShuffleAlg::HyperCube,
            JoinAlg::Tributary,
            &PlanOptions::default(),
        )
        .expect("HC_TJ"); // xtask: allow(expect): bench driver aborts on failure
        let rs = run_config(
            &spec.query,
            &db,
            &cluster,
            ShuffleAlg::Regular,
            JoinAlg::Hash,
            &PlanOptions::default(),
        )
        .expect("RS_HJ"); // xtask: allow(expect): bench driver aborts on failure
        let (hw, rw) = (hc.wall.as_secs_f64(), rs.wall.as_secs_f64());
        let (h0, r0) = *base.get_or_insert((hw, rw));

        rows_a.push(vec![
            w.to_string(),
            format!("{:.2}x", h0 / hw.max(1e-12)),
            format!("{:.2}x", r0 / rw.max(1e-12)),
            format!("{:.2}x", w as f64 / 2.0),
        ]);
        rows_b.push(vec![
            w.to_string(),
            hc.tuples_shuffled.to_string(),
            hc.hc_config
                .as_ref()
                .map(|c| c.to_string())
                .unwrap_or_default(),
        ]);
        let workers_f = w as f64;
        let sort_per = hc.sort_cpu().as_secs_f64() / workers_f;
        let join_per = hc.join_cpu().as_secs_f64() / workers_f;
        rows_c.push(vec![
            w.to_string(),
            format!("{:.4}s", sort_per),
            format!("{:.4}s", join_per),
        ]);
    }
    print_table(
        "(a) speedup vs 2 workers",
        &["workers", "HC_TJ", "RS_HJ", "ideal"],
        &rows_a,
    );
    print_table(
        "(b) HC tuples shuffled (replication grows with cluster size)",
        &["workers", "tuples", "config"],
        &rows_b,
    );
    print_table(
        "(c) per-worker HC_TJ time",
        &["workers", "sort", "tributary join"],
        &rows_c,
    );
    println!(
        "    (paper: HC_TJ scales near-linearly while RS_HJ plateaus beyond 4 workers\n     \
         due to skew; HC shuffle volume grows with cluster size yet per-worker\n     \
         sort+join time keeps dropping.)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::Scale;

    #[test]
    fn smoke_at_tiny_scale() {
        run(&Settings {
            scale: Scale::tiny(),
            workers: 64,
            seed: 1,
        });
    }
}
