//! Sensitivity analyses for the simulator's two main modelling knobs:
//!
//! 1. **Per-tuple shuffle cost** — the paper's wall-clock numbers embed a
//!    real network; our simulator charges a configurable per-tuple cost.
//!    Sweeping it shows where the plan ranking flips: at zero cost the
//!    comparison is pure compute (shuffle volume is free, broadcast looks
//!    cheap); at realistic costs the paper's ordering emerges.
//! 2. **Data skew** — rerunning Q1 on a preferential-attachment graph
//!    *without* the celebrity layer shows how much of the regular
//!    shuffle's disadvantage is skew rather than volume (the paper's
//!    claim that HyperCube "is more resilient to data skew").

use crate::report::print_table;
use crate::Settings;
use parjoin_common::Database;
use parjoin_datagen::graph;
use parjoin_engine::{run_config, Cluster, JoinAlg, PlanOptions, ShuffleAlg};
use std::time::Duration;

fn wall(db: &Database, cluster: &Cluster, s: ShuffleAlg, j: JoinAlg) -> f64 {
    let spec = parjoin_datagen::workloads::q1();
    run_config(&spec.query, db, cluster, s, j, &PlanOptions::default())
        .expect("plan runs") // xtask: allow(expect): bench driver aborts on failure
        .wall
        .as_secs_f64()
}

/// Sweeps the per-tuple shuffle cost on Q1.
pub fn tuple_cost(settings: &Settings) {
    println!("\n=== Sensitivity: per-tuple shuffle cost (Q1) ===");
    let db = settings.scale.twitter_db(settings.seed);
    let mut rows = Vec::new();
    for ns in [0u64, 100, 500, 2_000] {
        let cluster = Cluster::new(settings.workers)
            .with_seed(settings.seed)
            .with_shuffle_tuple_cost(Duration::from_nanos(ns));
        rows.push(vec![
            format!("{ns} ns"),
            format!(
                "{:.4}s",
                wall(&db, &cluster, ShuffleAlg::Regular, JoinAlg::Hash)
            ),
            format!(
                "{:.4}s",
                wall(&db, &cluster, ShuffleAlg::Broadcast, JoinAlg::Hash)
            ),
            format!(
                "{:.4}s",
                wall(&db, &cluster, ShuffleAlg::HyperCube, JoinAlg::Tributary)
            ),
        ]);
    }
    print_table(
        "Q1 wall clock vs modeled network cost",
        &["tuple cost", "RS_HJ", "BR_HJ", "HC_TJ"],
        &rows,
    );
    println!(
        "    (HC_TJ wins at every setting; the RS/BR ordering flips once the\n     \
         network is priced — exactly the trade the paper describes for Q1.)"
    );
}

/// Compares Q1 on graphs with and without the celebrity skew layer.
pub fn data_skew(settings: &Settings) {
    println!("\n=== Sensitivity: degree skew (Q1, with vs without celebrities) ===");
    let cluster = Cluster::new(settings.workers).with_seed(settings.seed);
    let scale = settings.scale;
    let with = scale.twitter_db(settings.seed);
    let mut without = Database::new();
    without.insert(
        "Twitter",
        graph::preferential_attachment(scale.twitter_nodes, scale.twitter_m, settings.seed),
    );
    let mut rows = Vec::new();
    for (name, db) in [("celebrity graph", &with), ("plain PA graph", &without)] {
        let rs = wall(db, &cluster, ShuffleAlg::Regular, JoinAlg::Hash);
        let hc = wall(db, &cluster, ShuffleAlg::HyperCube, JoinAlg::Tributary);
        rows.push(vec![
            name.to_string(),
            format!("{:.4}s", rs),
            format!("{:.4}s", hc),
            format!("{:.1}x", rs / hc.max(1e-12)),
        ]);
    }
    print_table(
        "Q1 wall clock: RS_HJ vs HC_TJ",
        &["graph", "RS_HJ", "HC_TJ", "RS/HC"],
        &rows,
    );
    println!(
        "    (the RS/HC gap shrinks without the hot hubs: part of HyperCube's\n     \
         advantage is volume, the rest is skew resilience — §2.1's analysis.)"
    );
}

/// Runs both sensitivity analyses.
pub fn run(settings: &Settings) {
    tuple_cost(settings);
    data_skew(settings);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::Scale;

    #[test]
    fn smoke() {
        run(&Settings {
            scale: Scale::tiny(),
            workers: 8,
            seed: 1,
        });
    }

    #[test]
    fn skew_widens_the_gap() {
        // With celebrities, RS/HC wall ratio must exceed the plain-PA
        // ratio at the same scale.
        let settings = Settings {
            scale: Scale::small(),
            workers: 64,
            seed: 42,
        };
        let cluster = Cluster::new(settings.workers).with_seed(settings.seed);
        let with = settings.scale.twitter_db(settings.seed);
        let mut without = Database::new();
        without.insert(
            "Twitter",
            graph::preferential_attachment(
                settings.scale.twitter_nodes,
                settings.scale.twitter_m,
                settings.seed,
            ),
        );
        let ratio = |db: &Database| {
            wall(db, &cluster, ShuffleAlg::Regular, JoinAlg::Hash)
                / wall(db, &cluster, ShuffleAlg::HyperCube, JoinAlg::Tributary).max(1e-12)
        };
        assert!(
            ratio(&with) > ratio(&without),
            "celebrities must widen the RS/HC gap"
        );
    }
}
