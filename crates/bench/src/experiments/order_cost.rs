//! Figure 12 and Table 7: validating the Tributary-join cost model.
//!
//! Figure 12's protocol: sample 20 random global variable orders per
//! query (Q3, Q4, Q7, Q8), run the single-machine Tributary join under
//! each (terminating hopeless ones at a cutoff — the paper used 1000 s,
//! we scale it down), and correlate estimated cost with measured runtime.
//! Table 7 compares the average random-order runtime against the
//! cost-model-chosen order's runtime.

use crate::experiments::six_configs::scale_for;
use crate::report::print_table;
use crate::Settings;
use parjoin_common::Relation;
use parjoin_core::order::{best_order, sample_orders, OrderCostModel};
use parjoin_core::tributary::{SortedAtom, Tributary};
use parjoin_datagen::QuerySpec;
use parjoin_query::{resolve_atoms, VarId};
use std::time::{Duration, Instant};

/// Measured data point: estimated cost vs (possibly censored) runtime.
pub struct CostPoint {
    /// Estimated cost (Eq. 4).
    pub est: f64,
    /// Measured runtime.
    pub secs: f64,
    /// True when the run hit the cutoff.
    pub censored: bool,
}

/// Runs the single-machine TJ under `order`, cut off at `cap`.
pub fn timed_tj(
    atoms: &[(Relation, Vec<VarId>)],
    num_vars: usize,
    order: &[VarId],
    cap: Duration,
) -> (f64, bool) {
    let prepared: Vec<SortedAtom> = atoms
        .iter()
        .map(|(r, vs)| SortedAtom::prepare(r, vs, order))
        .collect();
    let tj = Tributary::new(&prepared, order, &[], num_vars);
    let t0 = Instant::now();
    let (_, completed) = tj.run_guarded(|_| true, || t0.elapsed() < cap);
    (t0.elapsed().as_secs_f64(), !completed)
}

/// Pearson correlation over (log-est, log-runtime) pairs, as the paper's
/// scatter plot is log-log.
pub fn correlation(points: &[CostPoint]) -> f64 {
    let xs: Vec<f64> = points.iter().map(|p| p.est.max(1.0).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.secs.max(1e-9).ln()).collect();
    let n = xs.len() as f64;
    let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if vx <= 0.0 || vy <= 0.0 {
        return 1.0; // degenerate: constant series
    }
    cov / (vx * vy).sqrt()
}

fn resolved_owned(spec: &QuerySpec, settings: &Settings) -> (Vec<(Relation, Vec<VarId>)>, usize) {
    let mut scale = scale_for(spec.name, settings.scale);
    // Q8's bad orders run 100x+ past the cap at the default scale, which
    // censors most of the sample and flattens the correlation (the paper
    // used a 1000 s cutoff against 10–1000 s runtimes — roomier). Shrink
    // so the spread stays observable.
    if spec.name == "Q8" {
        scale.freebase_performances = scale.freebase_performances.min(6_000);
    }
    let db = scale.db_for(spec.dataset, settings.seed);
    // xtask: allow(expect): bench driver aborts on failure
    let (resolved, _filters) = resolve_atoms(&spec.query, &db).expect("resolves");
    // The paper's Figure 12 measures the pure join operator, so residual
    // filters are ignored here (they only shrink outputs).
    let atoms = resolved
        .into_iter()
        .map(|a| (a.rel.into_owned(), a.vars))
        .collect();
    (atoms, spec.query.num_vars())
}

/// Runs Figure 12 + Table 7 for the paper's four queries.
pub fn run(settings: &Settings) {
    println!("\n=== Figure 12 + Table 7: variable-order cost model validation ===");
    let cap = Duration::from_secs(10);
    let specs = [
        parjoin_datagen::workloads::q3(),
        parjoin_datagen::workloads::q4(),
        parjoin_datagen::workloads::q7(),
        parjoin_datagen::workloads::q8(),
    ];
    let mut tab7 = Vec::new();
    for spec in specs {
        let (atoms, num_vars) = resolved_owned(&spec, settings);
        let model_atoms: Vec<(&Relation, Vec<VarId>)> =
            atoms.iter().map(|(r, vs)| (r, vs.clone())).collect();
        let model = OrderCostModel::from_atoms(&model_atoms);
        let vars = spec.query.all_vars();

        // Q7 has only a handful of meaningful orders (2 join attributes);
        // sampling 20 covers them all, as in the paper's footnote.
        let orders = sample_orders(&vars, 20, settings.seed);
        let mut points = Vec::new();
        for o in &orders {
            let est = model.cost(o);
            let (secs, censored) = timed_tj(&atoms, num_vars, o, cap);
            points.push(CostPoint {
                est,
                secs,
                censored,
            });
        }
        let r = correlation(&points);
        let censored = points.iter().filter(|p| p.censored).count();
        println!(
            "\n  {}: correlation(log est, log runtime) = {:.3} over {} orders ({} hit the {:?} cap)",
            spec.name,
            r,
            points.len(),
            censored,
            cap
        );
        for p in points.iter().take(5) {
            println!(
                "    est {:>12.3e}  runtime {:>9.4}s{}",
                p.est,
                p.secs,
                if p.censored { " (cap)" } else { "" }
            );
        }

        // Table 7: average random runtime vs cost-model best.
        let avg = points.iter().map(|p| p.secs).sum::<f64>() / points.len() as f64;
        let (best, _) = best_order(&model, &vars);
        let (best_secs, best_censored) = timed_tj(&atoms, num_vars, &best, cap);
        assert!(
            !best_censored,
            "{}: the optimized order must finish",
            spec.name
        );
        tab7.push(vec![
            spec.name.to_string(),
            format!(
                "{avg:.4}{}",
                if censored > 0 { " (≥, censored)" } else { "" }
            ),
            format!("{best_secs:.4}"),
            format!(
                "{}{:.1}x",
                if censored > 0 { "≥ " } else { "" },
                avg / best_secs.max(1e-4)
            ),
        ]);
    }
    print_table(
        "Table 7: runtime with random orders vs cost-model best (seconds)",
        &["query", "avg random", "best order", "improvement"],
        &tab7,
    );
    println!(
        "    (paper: correlations 0.658/0.216/1.0/0.932 for Q3/Q4/Q7/Q8; the\n     \
         cost-model order improves runtimes by up to ~10x — Table 7.)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_of_perfect_line_is_one() {
        let pts: Vec<CostPoint> = (1..10)
            .map(|i| CostPoint {
                est: (i as f64) * 10.0,
                secs: i as f64,
                censored: false,
            })
            .collect();
        assert!((correlation(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_handles_constant_series() {
        let pts: Vec<CostPoint> = (0..5)
            .map(|_| CostPoint {
                est: 5.0,
                secs: 1.0,
                censored: false,
            })
            .collect();
        assert_eq!(correlation(&pts), 1.0);
    }
}
