//! Figure 18 / Appendix B: why random hypercube-cell allocation explodes
//! replication. For `A(x,y,z,p) :- R(x,y), S(y,z), T(z,p)` on an 8×8 cell
//! grid over 4 physical servers, each server ends up covering nearly all
//! rows and columns of the grid, so the row/column-replicated relations
//! `R` and `T` are sent almost entirely to every server.

use crate::report::print_table;
use crate::Settings;
use parjoin_core::hypercube::{CellAllocation, HcConfig, ShareProblem};
use parjoin_query::QueryBuilder;

/// Builds the Appendix B example and prints per-server coverage.
pub fn run(settings: &Settings) {
    println!("\n=== Figure 18 (Appendix B): random cell allocation example ===");
    let mut b = QueryBuilder::new("A");
    let (x, y, z, p) = (b.var("x"), b.var("y"), b.var("z"), b.var("p"));
    b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, p]);
    let q = b.build();
    let m = 1_000_000u64;
    let problem = ShareProblem::from_query(&q, &[m, m, m]);

    // 8×8 cells on dimensions y and z (x and p get share 1), 4 servers.
    let grid = HcConfig::new(q.all_vars(), vec![1, 8, 8, 1]);
    let alloc = CellAllocation::random(grid.clone(), 4, settings.seed);

    // Per-server coverage of the h(y) rows and h(z) columns.
    let mut rows = Vec::new();
    for w in 0..4 {
        let mut ys = std::collections::BTreeSet::new();
        let mut zs = std::collections::BTreeSet::new();
        for (cell, &owner) in alloc.owner.iter().enumerate() {
            if owner == w {
                let c = grid.cell_coords(cell);
                ys.insert(c[1]);
                zs.insert(c[2]);
            }
        }
        rows.push(vec![
            format!("server {w}"),
            format!("{}/8", ys.len()),
            format!("{}/8", zs.len()),
            format!("{:.0}%", 100.0 * ys.len() as f64 / 8.0),
            format!("{:.0}%", 100.0 * zs.len() as f64 / 8.0),
        ]);
    }
    print_table(
        "row/column coverage per server (random allocation, 64 cells on 4 servers)",
        &[
            "server",
            "h(y) rows",
            "h(z) cols",
            "R replicated",
            "T replicated",
        ],
        &rows,
    );

    let ident = CellAllocation::identity(HcConfig::new(q.all_vars(), vec![1, 2, 2, 1]));
    let rand_total = alloc.total_workload(&problem);
    let ident_total = ident.total_workload(&problem);
    println!(
        "\n    total expected tuples shuffled: random(64 cells/4 servers) = {:.2}M,\n    \
         one-cell-per-server 2x2 = {:.2}M  ({:.1}x more under random allocation)",
        rand_total / 1e6,
        ident_total / 1e6,
        rand_total / ident_total
    );
    println!(
        "    (paper's Figure 18: with 16 cells on 4 servers, server 1 covers 7/8 of\n     \
         h(y) and 7/8 of h(z), so 7/8 of R and 7/8 of T go to one server.)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::Scale;

    #[test]
    fn smoke() {
        run(&Settings {
            scale: Scale::tiny(),
            workers: 4,
            seed: 1,
        });
    }
}
