//! Property tests for the relation primitives.

use parjoin_common::{hash, sort, wire, Relation};
use proptest::prelude::*;

fn arb_relation(max_arity: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    (1..=max_arity).prop_flat_map(move |arity| {
        proptest::collection::vec(proptest::collection::vec(0u64..50, arity), 0..=max_rows)
            .prop_map(move |rows| Relation::from_rows(arity, rows))
    })
}

/// Row-major buffers of arity 1–5 with a tight value domain (lots of
/// duplicate rows, the stability-sensitive case) mixed with full-range
/// values (all eight key bytes vary).
fn arb_sort_input() -> impl Strategy<Value = (usize, Vec<u64>)> {
    (1usize..=5, 0u64..2).prop_flat_map(move |(arity, wide)| {
        proptest::collection::vec(any::<u64>(), 0..=40 * arity).prop_map(move |mut flat| {
            if wide == 0 {
                // Tight domain: lots of duplicate rows, the
                // stability-sensitive case.
                for v in &mut flat {
                    *v %= 7;
                }
            }
            flat.truncate(flat.len() / arity * arity);
            (arity, flat)
        })
    })
}

/// Like [`arb_relation`] but includes arity 0 (nullary relations) and the
/// full `u64` value range, which exercises multi-byte varints.
fn arb_wire_relation(max_arity: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    (0..=max_arity, 0..=max_rows).prop_flat_map(move |(arity, rows)| {
        proptest::collection::vec(any::<u64>(), arity * rows).prop_map(move |flat| {
            let mut rel = Relation::new(arity);
            if arity == 0 {
                rel.push_nullary_rows(rows);
            } else {
                for chunk in flat.chunks_exact(arity) {
                    rel.push_row(chunk);
                }
            }
            rel
        })
    })
}

proptest! {
    #[test]
    fn sort_is_permutation(rel in arb_relation(4, 60)) {
        let mut sorted = rel.clone();
        sorted.sort_lex();
        prop_assert!(sorted.is_sorted_lex());
        prop_assert_eq!(sorted.len(), rel.len());
        // Multisets equal: compare sorted row vectors.
        let mut a: Vec<Vec<u64>> = rel.rows().map(|r| r.to_vec()).collect();
        let b: Vec<Vec<u64>> = sorted.rows().map(|r| r.to_vec()).collect();
        a.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn radix_sort_identical_to_comparator_sort(input in arb_sort_input()) {
        let (arity, flat) = input;
        let n = flat.len() / arity;
        // The dispatcher hides the radix path below its size threshold,
        // so target both kernels directly: identical index permutations
        // mean identical gathered bytes for every input.
        let radix = sort::sorted_indices_radix(&flat, arity, 0, n);
        let cmp = sort::sorted_indices_comparator(&flat, arity, 0, n);
        prop_assert_eq!(&radix, &cmp);
        prop_assert_eq!(
            sort::gather(&flat, arity, &radix),
            sort::gather(&flat, arity, &cmp)
        );
    }

    #[test]
    fn merge_runs_identical_to_full_sort(input in arb_sort_input(), cut in 0usize..=40) {
        let (arity, flat) = input;
        let n = flat.len() / arity;
        let mid = cut.min(n);
        let a = sort::sorted_indices_comparator(&flat, arity, 0, mid);
        let b = sort::sorted_indices_comparator(&flat, arity, mid, n);
        let merged = sort::merge_runs(&flat, arity, &a, &b);
        prop_assert_eq!(merged, sort::sorted_indices_comparator(&flat, arity, 0, n));
    }

    #[test]
    fn distinct_is_sorted_dedup(rel in arb_relation(3, 60)) {
        let d = rel.clone().distinct();
        prop_assert!(d.is_sorted_lex());
        let mut expect: Vec<Vec<u64>> = rel.rows().map(|r| r.to_vec()).collect();
        expect.sort();
        expect.dedup();
        let got: Vec<Vec<u64>> = d.rows().map(|r| r.to_vec()).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn project_then_len_preserved(rel in arb_relation(4, 40), keep in 0usize..4) {
        let keep = keep.min(rel.arity() - 1);
        let p = rel.project(&[keep]);
        prop_assert_eq!(p.len(), rel.len());
        prop_assert_eq!(p.arity(), 1);
        for (i, row) in rel.rows().enumerate() {
            prop_assert_eq!(p.row(i)[0], row[keep]);
        }
    }

    #[test]
    fn buckets_cover_range(x in any::<u64>(), seed in any::<u64>(), b in 1usize..128) {
        prop_assert!(hash::bucket(x, seed, b) < b);
        prop_assert!(hash::bucket_row(&[x, seed], seed, b) < b);
    }

    #[test]
    fn wire_round_trip_is_byte_identical(rel in arb_wire_relation(4, 60)) {
        let mut buf = Vec::new();
        wire::encode_relation(&rel, &mut buf);
        let back = wire::decode_batch(&buf).expect("decode own encoding");
        prop_assert_eq!(&back, &rel);
        // Re-encoding the decoded relation must reproduce the bytes exactly.
        let mut buf2 = Vec::new();
        wire::encode_relation(&back, &mut buf2);
        prop_assert_eq!(buf2, buf);
    }

    #[test]
    fn vectored_round_trip_is_byte_identical(
        rel in arb_wire_relation(4, 60),
        compressed in any::<bool>(),
    ) {
        let compressed = compressed && rel.arity() > 0;
        let mut buf = Vec::new();
        wire::encode_vectored(rel.arity(), rel.len(), rel.raw(), compressed, &mut buf);
        let mut back = Relation::new(rel.arity());
        let n = wire::decode_vectored_into(&buf, &mut back).expect("decode own encoding");
        prop_assert_eq!(n, rel.len());
        prop_assert_eq!(&back, &rel);
        // Re-encoding the decoded relation reproduces the bytes exactly.
        let mut buf2 = Vec::new();
        wire::encode_vectored(back.arity(), back.len(), back.raw(), compressed, &mut buf2);
        prop_assert_eq!(buf2, buf);
        // Uncompressed frames cost exactly what `frame_bytes` predicts;
        // that arithmetic is what the analyzer's R411/R414 pre-flight
        // and the `tx.bytes_raw` counter both lean on.
        if !compressed {
            prop_assert_eq!(
                buf.len() as u64,
                wire::frame_bytes(parjoin_common::WireFormat::Vectored, rel.arity(), rel.len())
            );
        }
    }

    #[test]
    fn vectored_decode_rejects_mutations(
        rel in arb_wire_relation(3, 20),
        compressed in any::<bool>(),
        cut in any::<usize>(),
        flip in any::<u8>(),
    ) {
        let compressed = compressed && rel.arity() > 0;
        let mut buf = Vec::new();
        wire::encode_vectored(rel.arity(), rel.len(), rel.raw(), compressed, &mut buf);
        // Truncating anywhere strictly inside the frame must error, never
        // panic or decode short.
        let cut = cut % buf.len();
        let mut scratch = Relation::new(rel.arity());
        prop_assert!(wire::decode_vectored_into(&buf[..cut], &mut scratch).is_err());
        // Unknown flag bits are a hard decode error (forward-compat fence).
        let unknown = flip | 0x02; // bit 1 is reserved
        let mut bad = buf.clone();
        bad[0] = unknown;
        let mut scratch = Relation::new(rel.arity());
        prop_assert!(wire::decode_vectored_into(&bad, &mut scratch).is_err());
    }

    #[test]
    fn compression_is_lossless_on_adversarial_columns(
        arity in 1usize..=3,
        rows in 0usize..=64,
        mode in 0u8..3,
        seed in any::<u64>(),
    ) {
        // Sorted runs, constant columns, and full-range noise — the delta
        // coder must round-trip all of them (wrapping arithmetic covers
        // negative and overflowing deltas).
        let mut rel = Relation::new(arity);
        let mut row = vec![0u64; arity];
        for i in 0..rows {
            for (c, v) in row.iter_mut().enumerate() {
                *v = match mode {
                    0 => i as u64 * (c as u64 + 1),              // sorted runs
                    1 => seed,                                   // constant
                    _ => seed
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(i as u64 ^ (c as u64) << 32), // noise
                };
            }
            rel.push_row(&row);
        }
        let mut buf = Vec::new();
        wire::encode_vectored(arity, rows, rel.raw(), true, &mut buf);
        let mut back = Relation::new(arity);
        wire::decode_vectored_into(&buf, &mut back).expect("lossless");
        prop_assert_eq!(back, rel);
    }

    #[test]
    fn wire_decode_into_appends(a in arb_wire_relation(3, 20), b in arb_wire_relation(3, 20)) {
        // Only meaningful when arities agree; coerce b onto a's arity.
        let mut buf = Vec::new();
        wire::encode_relation(&a, &mut buf);
        let mut acc = Relation::new(a.arity());
        let n1 = wire::decode_batch_into(&buf, &mut acc).expect("first batch");
        prop_assert_eq!(n1, a.len());
        if b.arity() == a.arity() {
            let mut buf2 = Vec::new();
            wire::encode_relation(&b, &mut buf2);
            let n2 = wire::decode_batch_into(&buf2, &mut acc).expect("second batch");
            prop_assert_eq!(n2, b.len());
            prop_assert_eq!(acc.len(), a.len() + b.len());
        }
    }
}
