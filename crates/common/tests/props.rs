//! Property tests for the relation primitives.

use parjoin_common::{hash, Relation};
use proptest::prelude::*;

fn arb_relation(max_arity: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    (1..=max_arity).prop_flat_map(move |arity| {
        proptest::collection::vec(proptest::collection::vec(0u64..50, arity), 0..=max_rows)
            .prop_map(move |rows| Relation::from_rows(arity, rows))
    })
}

proptest! {
    #[test]
    fn sort_is_permutation(rel in arb_relation(4, 60)) {
        let mut sorted = rel.clone();
        sorted.sort_lex();
        prop_assert!(sorted.is_sorted_lex());
        prop_assert_eq!(sorted.len(), rel.len());
        // Multisets equal: compare sorted row vectors.
        let mut a: Vec<Vec<u64>> = rel.rows().map(|r| r.to_vec()).collect();
        let b: Vec<Vec<u64>> = sorted.rows().map(|r| r.to_vec()).collect();
        a.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn distinct_is_sorted_dedup(rel in arb_relation(3, 60)) {
        let d = rel.clone().distinct();
        prop_assert!(d.is_sorted_lex());
        let mut expect: Vec<Vec<u64>> = rel.rows().map(|r| r.to_vec()).collect();
        expect.sort();
        expect.dedup();
        let got: Vec<Vec<u64>> = d.rows().map(|r| r.to_vec()).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn project_then_len_preserved(rel in arb_relation(4, 40), keep in 0usize..4) {
        let keep = keep.min(rel.arity() - 1);
        let p = rel.project(&[keep]);
        prop_assert_eq!(p.len(), rel.len());
        prop_assert_eq!(p.arity(), 1);
        for (i, row) in rel.rows().enumerate() {
            prop_assert_eq!(p.row(i)[0], row[keep]);
        }
    }

    #[test]
    fn buckets_cover_range(x in any::<u64>(), seed in any::<u64>(), b in 1usize..128) {
        prop_assert!(hash::bucket(x, seed, b) < b);
        prop_assert!(hash::bucket_row(&[x, seed], seed, b) < b);
    }
}
