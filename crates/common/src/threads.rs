//! The workspace's thread-count heuristics, in one place.
//!
//! Two rules govern how the engine spends host cores, and both used to
//! be re-derived inline at each call site (executor pool, prepare sorts,
//! probe morsels, analyzer pre-flight). They live here so there is
//! exactly one site to audit — the concurrency lints in `cargo xtask
//! lint` assume spawn fan-out is always derived from these helpers.
//!
//! * [`pool_threads`] — how many OS threads a *phase pool* runs over `w`
//!   simulated workers: the host's parallelism clamped to `[1, w]`.
//!   One task (simulated worker) per thread at a time keeps per-worker
//!   busy timings honest.
//! * [`per_worker_threads`] — how many *extra* threads each simulated
//!   worker may claim for intra-worker work (chunked prepare sorts,
//!   probe morsels): the cores left over after every worker got one,
//!   `host / w`, at least 1. Worker-level parallelism takes priority
//!   because per-worker jobs are independent, while intra-worker
//!   parallelism pays merge/handoff overhead for its speedup.
//!
//! `host = None` (the host refused to report its parallelism) degrades
//! both rules to a single thread rather than guessing.

/// Pool width for a phase over `workers` simulated workers: the host's
/// available parallelism, clamped to `[1, workers]`.
pub fn pool_threads(workers: usize, host: Option<usize>) -> usize {
    host.unwrap_or(1).min(workers).max(1)
}

/// Threads each simulated worker may claim for intra-worker work: the
/// host cores left over after giving every worker one (`host / workers`,
/// at least 1).
pub fn per_worker_threads(workers: usize, host: Option<usize>) -> usize {
    (host.unwrap_or(1) / workers.max(1)).max(1)
}

/// The host's available parallelism, or `None` when the platform
/// refuses to report it (sandboxed cgroups, exotic targets).
pub fn host_parallelism() -> Option<usize> {
    std::thread::available_parallelism().ok().map(|n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_clamps_to_workers_and_one() {
        assert_eq!(pool_threads(4, Some(16)), 4);
        assert_eq!(pool_threads(16, Some(4)), 4);
        assert_eq!(pool_threads(4, None), 1);
        assert_eq!(pool_threads(0, Some(8)), 1);
    }

    #[test]
    fn per_worker_divides_leftover_cores() {
        assert_eq!(per_worker_threads(4, Some(16)), 4);
        assert_eq!(per_worker_threads(16, Some(4)), 1);
        assert_eq!(per_worker_threads(4, None), 1);
        assert_eq!(per_worker_threads(0, Some(8)), 8);
    }
}
