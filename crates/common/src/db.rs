//! A named catalog of relations.

use crate::Relation;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A database: relation name → [`Relation`]. Names are case-sensitive.
///
/// `BTreeMap` keeps iteration deterministic, which keeps every experiment
/// reproducible run-to-run.
///
/// Relations are stored behind `Arc`, so cloning a `Database` (or
/// inserting the same relation into many databases) shares the column
/// data instead of copying it. A serving catalog hands each query a
/// snapshot `Database` whose entries alias the resident relations; batch
/// callers see the same by-value API as before because [`get`](Self::get)
/// and [`expect`](Self::expect) still return `&Relation`.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, Arc<Relation>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a relation.
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(name.into(), Arc::new(rel));
    }

    /// Inserts (or replaces) a relation already behind an `Arc`, sharing
    /// it with every other holder instead of copying.
    pub fn insert_shared(&mut self, name: impl Into<String>, rel: Arc<Relation>) {
        self.relations.insert(name.into(), rel);
    }

    /// Removes a relation, returning its shared handle if present.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Relation>> {
        self.relations.remove(name)
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(|r| r.as_ref())
    }

    /// Looks up a relation's shared handle by name (cheap to clone).
    pub fn get_shared(&self, name: &str) -> Option<Arc<Relation>> {
        self.relations.get(name).cloned()
    }

    /// Looks up a relation, panicking with a clear message if missing.
    ///
    /// # Panics
    /// Panics if `name` is not in the catalog.
    pub fn expect(&self, name: &str) -> &Relation {
        self.relations
            .get(name)
            .map(|r| r.as_ref())
            // xtask: allow(panic)
            .unwrap_or_else(|| panic!("relation `{name}` not found in database"))
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v.as_ref()))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total tuples across all relations (the paper's "Input size" column
    /// in Table 6 counts each referenced copy; that adjustment happens at
    /// the query level).
    pub fn total_tuples(&self) -> u64 {
        self.relations.values().map(|r| r.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, [[1u64, 2]].iter()));
        assert_eq!(db.expect("R").len(), 1);
        assert!(db.get("S").is_none());
        assert_eq!(db.len(), 1);
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn expect_missing_panics() {
        Database::new().expect("nope");
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let mut db = Database::new();
        db.insert("Z", Relation::new(1));
        db.insert("A", Relation::new(1));
        let names: Vec<_> = db.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["A", "Z"]);
    }

    #[test]
    fn clones_share_relation_storage() {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, [[1u64, 2]].iter()));
        let snapshot = db.clone();
        let a = db.get_shared("R").expect("present");
        let b = snapshot.get_shared("R").expect("present");
        assert!(Arc::ptr_eq(&a, &b), "clone aliases the same relation");
    }

    #[test]
    fn insert_shared_and_remove_roundtrip() {
        let rel = Arc::new(Relation::from_rows(1, [[7u64]].iter()));
        let mut db = Database::new();
        db.insert_shared("R", Arc::clone(&rel));
        let got = db.get_shared("R").expect("present");
        assert!(Arc::ptr_eq(&rel, &got));
        let removed = db.remove("R").expect("removed");
        assert!(Arc::ptr_eq(&rel, &removed));
        assert!(db.is_empty());
    }
}
