//! On-wire encoding of tuple batches.
//!
//! The streaming shuffle runtime moves relations between workers as
//! fixed-size *batches* of rows rather than whole partitions. Each batch
//! is encoded as:
//!
//! ```text
//! varint(row_count)  varint(arity)  row_count × arity × u64-LE values
//! ```
//!
//! The header uses LEB128 varints (batches are usually small, so their
//! counts fit in one or two bytes) while the column values stay fixed
//! eight-byte little-endian words: values are dictionary-encoded ids
//! spread across the full `u64` range, where varint encoding would cost
//! more than it saves, and fixed-width decode is a straight `memcpy`.
//!
//! The format is self-delimiting only via the header — the caller frames
//! batches on the transport (length prefix for TCP, one message per batch
//! in process). Empty batches (zero rows) and nullary rows (zero arity,
//! boolean-query relations) both round-trip exactly.

use crate::{Relation, Value};
use std::fmt;

/// A malformed byte sequence handed to [`decode_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Appends `v` to `out` as a LEB128 varint (1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint starting at `*pos`, advancing `*pos` past it.
///
/// # Errors
/// Returns [`WireError`] on truncated input or a varint longer than ten
/// bytes (which cannot encode a `u64`).
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    for shift in 0..10u32 {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(WireError("truncated varint".into()));
        };
        *pos += 1;
        let low = u64::from(byte & 0x7f);
        // The tenth byte may only carry the final bit of a u64.
        if shift == 9 && byte > 0x01 {
            return Err(WireError("varint overflows u64".into()));
        }
        v |= low << (7 * shift);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError("varint longer than 10 bytes".into()))
}

/// Encodes `rows` row-major tuples of `arity` columns (`flat` holds
/// `rows × arity` values) as one batch, appending to `out` (so a sender
/// can reuse one buffer across batches). The explicit row count is what
/// lets nullary tuples — which contribute no values at all — round-trip
/// with their real multiplicity.
///
/// # Panics
/// Panics if `flat.len() != rows * arity` (callers build `flat` row by
/// row, so a mismatch is a programming error).
pub fn encode_batch(arity: usize, rows: usize, flat: &[Value], out: &mut Vec<u8>) {
    assert_eq!(flat.len(), rows * arity, "flat buffer is not rows × arity");
    write_varint(out, rows as u64);
    write_varint(out, arity as u64);
    out.reserve(flat.len() * 8);
    for &v in flat {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes an entire relation as a single batch.
pub fn encode_relation(rel: &Relation, out: &mut Vec<u8>) {
    encode_batch(rel.arity(), rel.len(), rel.raw(), out);
}

/// Decodes one batch, appending its rows to `rel`.
///
/// Returns the number of rows appended.
///
/// # Errors
/// Returns [`WireError`] when the header is malformed, the payload is
/// truncated or over-long, or the batch arity disagrees with `rel`.
pub fn decode_batch_into(bytes: &[u8], rel: &mut Relation) -> Result<usize, WireError> {
    let mut pos = 0usize;
    let rows = read_varint(bytes, &mut pos)?;
    let arity = read_varint(bytes, &mut pos)?;
    let rows = usize::try_from(rows).map_err(|_| WireError("row count overflow".into()))?;
    let arity = usize::try_from(arity).map_err(|_| WireError("arity overflow".into()))?;
    if arity != rel.arity() {
        return Err(WireError(format!(
            "batch arity {arity} does not match relation arity {}",
            rel.arity()
        )));
    }
    let values = rows
        .checked_mul(arity)
        .ok_or_else(|| WireError("batch size overflow".into()))?;
    let expect = values
        .checked_mul(8)
        .ok_or_else(|| WireError("batch size overflow".into()))?;
    if bytes.len() - pos != expect {
        return Err(WireError(format!(
            "payload is {} bytes, expected {expect} for {rows} rows × {arity} cols",
            bytes.len() - pos
        )));
    }
    if arity == 0 {
        rel.push_nullary_rows(rows);
        return Ok(rows);
    }
    let mut row = Vec::with_capacity(arity);
    for _ in 0..rows {
        row.clear();
        for _ in 0..arity {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[pos..pos + 8]);
            pos += 8;
            row.push(Value::from_le_bytes(word));
        }
        rel.push_row(&row);
    }
    Ok(rows)
}

/// Decodes one batch into a fresh relation.
///
/// # Errors
/// Returns [`WireError`] on any malformed input (see
/// [`decode_batch_into`]).
pub fn decode_batch(bytes: &[u8]) -> Result<Relation, WireError> {
    let mut pos = 0usize;
    let _rows = read_varint(bytes, &mut pos)?;
    let arity = read_varint(bytes, &mut pos)?;
    let arity = usize::try_from(arity).map_err(|_| WireError("arity overflow".into()))?;
    let mut rel = Relation::new(arity);
    decode_batch_into(bytes, &mut rel)?;
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncated_errors() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 300);
        buf.pop();
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn varint_overlong_errors() {
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn batch_round_trips() {
        let rel = Relation::from_rows(3, [[1u64, 2, 3], [u64::MAX, 0, 7]].iter());
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        let back = decode_batch(&buf).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn empty_batch_round_trips() {
        let rel = Relation::new(4);
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        let back = decode_batch(&buf).unwrap();
        assert_eq!(back.arity(), 4);
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn nullary_batch_round_trips() {
        let mut rel = Relation::new(0);
        rel.push_nullary_rows(5);
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        assert_eq!(buf.len(), 2, "5 nullary rows encode as two header bytes");
        let back = decode_batch(&buf).unwrap();
        assert_eq!(back.arity(), 0);
        assert_eq!(back.len(), 5);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let rel = Relation::from_rows(2, [[1u64, 2]].iter());
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        let mut wrong = Relation::new(3);
        assert!(decode_batch_into(&buf, &mut wrong).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let rel = Relation::from_rows(2, [[1u64, 2], [3, 4]].iter());
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        buf.truncate(buf.len() - 1);
        assert!(decode_batch(&buf).is_err());
    }
}
