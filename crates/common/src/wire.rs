//! On-wire encoding of tuple batches.
//!
//! The streaming shuffle runtime moves relations between workers as
//! fixed-size *batches* of rows rather than whole partitions. Two frame
//! layouts coexist behind [`WireFormat`]:
//!
//! **Varint** (legacy, PR 2):
//!
//! ```text
//! varint(row_count)  varint(arity)  row_count × arity × u64-LE values
//! ```
//!
//! **Vectored** (default): a one-byte flags field leads so receivers can
//! dispatch before the counts, and the payload is the sender's flat
//! row-major value slice verbatim —
//!
//! ```text
//! flags  varint(arity)  varint(row_count)  payload
//! payload (raw):        row_count × arity × u64-LE values
//! payload (compressed): per column, varint-zigzag deltas (column-major)
//! ```
//!
//! The vectored layout exists for scatter/gather sends: the header fits a
//! [`VECTORED_HEADER_MAX`]-byte stack buffer ([`vectored_header`]) and
//! the raw payload *is* the relation arena's `&[u64]` slice reinterpreted
//! as little-endian words, so a streaming sender writes two borrowed
//! slices and never materializes an owned encode buffer. The optional
//! compression (flag bit [`FLAG_COMPRESSED`]) delta-encodes each column
//! with zigzag varints — sorted shuffle columns collapse to runs of
//! one-byte deltas; arbitrary data still round-trips via wrapping
//! arithmetic.
//!
//! Header counts use LEB128 varints (batches are usually small, so their
//! counts fit in one or two bytes) while raw column values stay fixed
//! eight-byte little-endian words: values are dictionary-encoded ids
//! spread across the full `u64` range, where varint encoding would cost
//! more than it saves, and fixed-width decode is a straight `memcpy`.
//!
//! Both formats are self-delimiting only via the header — the caller
//! frames batches on the transport (length prefix for TCP, one message
//! per batch in process). Empty batches (zero rows) and nullary rows
//! (zero arity, boolean-query relations) round-trip exactly in both.

pub mod control;

use crate::{Relation, Value};
use std::fmt;

/// A malformed byte sequence handed to [`decode_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Appends `v` to `out` as a LEB128 varint (1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint starting at `*pos`, advancing `*pos` past it.
///
/// # Errors
/// Returns [`WireError`] on truncated input or a varint longer than ten
/// bytes (which cannot encode a `u64`).
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    for shift in 0..10u32 {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(WireError("truncated varint".into()));
        };
        *pos += 1;
        let low = u64::from(byte & 0x7f);
        // The tenth byte may only carry the final bit of a u64.
        if shift == 9 && byte > 0x01 {
            return Err(WireError("varint overflows u64".into()));
        }
        v |= low << (7 * shift);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError("varint longer than 10 bytes".into()))
}

/// Encodes `rows` row-major tuples of `arity` columns (`flat` holds
/// `rows × arity` values) as one batch, appending to `out` (so a sender
/// can reuse one buffer across batches). The explicit row count is what
/// lets nullary tuples — which contribute no values at all — round-trip
/// with their real multiplicity.
///
/// # Panics
/// Panics if `flat.len() != rows * arity` (callers build `flat` row by
/// row, so a mismatch is a programming error).
pub fn encode_batch(arity: usize, rows: usize, flat: &[Value], out: &mut Vec<u8>) {
    assert_eq!(flat.len(), rows * arity, "flat buffer is not rows × arity");
    write_varint(out, rows as u64);
    write_varint(out, arity as u64);
    out.reserve(flat.len() * 8);
    for &v in flat {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes an entire relation as a single batch.
pub fn encode_relation(rel: &Relation, out: &mut Vec<u8>) {
    encode_batch(rel.arity(), rel.len(), rel.raw(), out);
}

/// Decodes one batch, appending its rows to `rel`.
///
/// Returns the number of rows appended.
///
/// # Errors
/// Returns [`WireError`] when the header is malformed, the payload is
/// truncated or over-long, or the batch arity disagrees with `rel`.
pub fn decode_batch_into(bytes: &[u8], rel: &mut Relation) -> Result<usize, WireError> {
    let mut pos = 0usize;
    let rows = read_varint(bytes, &mut pos)?;
    let arity = read_varint(bytes, &mut pos)?;
    let rows = usize::try_from(rows).map_err(|_| WireError("row count overflow".into()))?;
    let arity = usize::try_from(arity).map_err(|_| WireError("arity overflow".into()))?;
    if arity != rel.arity() {
        return Err(WireError(format!(
            "batch arity {arity} does not match relation arity {}",
            rel.arity()
        )));
    }
    let values = rows
        .checked_mul(arity)
        .ok_or_else(|| WireError("batch size overflow".into()))?;
    let expect = values
        .checked_mul(8)
        .ok_or_else(|| WireError("batch size overflow".into()))?;
    if bytes.len() - pos != expect {
        return Err(WireError(format!(
            "payload is {} bytes, expected {expect} for {rows} rows × {arity} cols",
            bytes.len() - pos
        )));
    }
    if arity == 0 {
        rel.push_nullary_rows(rows);
        return Ok(rows);
    }
    let mut row = Vec::with_capacity(arity);
    for _ in 0..rows {
        row.clear();
        for _ in 0..arity {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[pos..pos + 8]);
            pos += 8;
            row.push(Value::from_le_bytes(word));
        }
        rel.push_row(&row);
    }
    Ok(rows)
}

/// Which batch framing a runtime puts on the wire.
///
/// The legacy [`Varint`](WireFormat::Varint) layout stays readable so
/// cross-version round-trip tests can prove query output byte-identical
/// under old and new framing; [`Vectored`](WireFormat::Vectored) is the
/// default zero-copy layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireFormat {
    /// PR 2 layout: `varint(rows) varint(arity) values`, encoded into an
    /// owned buffer per batch.
    Varint,
    /// Scatter/gather layout: `flags varint(arity) varint(rows)` header
    /// plus the borrowed flat row slice (optionally column-compressed).
    #[default]
    Vectored,
}

impl fmt::Display for WireFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireFormat::Varint => write!(f, "varint"),
            WireFormat::Vectored => write!(f, "vectored"),
        }
    }
}

/// Vectored-frame flag bit: the payload is column-major delta+zigzag
/// varints instead of raw little-endian words.
pub const FLAG_COMPRESSED: u8 = 0x01;

/// Flag bits a decoder understands; anything else is a decode error (a
/// future format revision, or corruption).
const KNOWN_FLAGS: u8 = FLAG_COMPRESSED;

/// Upper bound on an encoded vectored header: the flags byte plus two
/// ten-byte varints.
pub const VECTORED_HEADER_MAX: usize = 21;

/// An encoded vectored frame header on the stack. Senders write
/// [`VectoredHeader::as_bytes`] and then the payload slice — the
/// scatter/gather shape that keeps row bytes out of owned encode
/// buffers.
#[derive(Debug, Clone, Copy)]
pub struct VectoredHeader {
    buf: [u8; VECTORED_HEADER_MAX],
    len: usize,
}

impl VectoredHeader {
    /// The encoded header bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

/// Encodes the `flags · varint(arity) · varint(rows)` header of a
/// vectored frame.
pub fn vectored_header(arity: usize, rows: usize, compressed: bool) -> VectoredHeader {
    let mut buf = [0u8; VECTORED_HEADER_MAX];
    buf[0] = if compressed { FLAG_COMPRESSED } else { 0 };
    let mut len = 1usize;
    for mut v in [arity as u64, rows as u64] {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                buf[len] = byte;
                len += 1;
                break;
            }
            buf[len] = byte | 0x80;
            len += 1;
        }
    }
    VectoredHeader { buf, len }
}

/// Bytes a `u64` occupies as a LEB128 varint (1–10).
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Exact on-wire size of an uncompressed vectored frame.
pub fn vectored_frame_bytes(arity: usize, rows: usize) -> u64 {
    1 + varint_len(arity as u64) as u64
        + varint_len(rows as u64) as u64
        + (rows as u64) * (arity as u64) * 8
}

/// Exact on-wire size of a legacy varint-format frame.
pub fn varint_frame_bytes(arity: usize, rows: usize) -> u64 {
    varint_len(rows as u64) as u64
        + varint_len(arity as u64) as u64
        + (rows as u64) * (arity as u64) * 8
}

/// Exact on-wire size of an uncompressed frame under `format`. The
/// analyzer's per-frame pre-flight and the `runtime.tx.bytes_raw`
/// accounting both use this — keep it in lockstep with the encoders
/// (`wire_props` pins estimate == actual).
pub fn frame_bytes(format: WireFormat, arity: usize, rows: usize) -> u64 {
    match format {
        WireFormat::Varint => varint_frame_bytes(arity, rows),
        WireFormat::Vectored => vectored_frame_bytes(arity, rows),
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes `rows × arity` row-major values as the compressed vectored
/// payload: column-major, each column a chain of zigzag varint deltas
/// from the previous row's value (first row deltas from zero), appended
/// to `out`.
///
/// # Panics
/// Panics if `flat.len() != rows * arity`.
pub fn compress_columns(arity: usize, rows: usize, flat: &[Value], out: &mut Vec<u8>) {
    assert_eq!(flat.len(), rows * arity, "flat buffer is not rows × arity");
    for c in 0..arity {
        let mut prev: u64 = 0;
        for r in 0..rows {
            let v = flat[r * arity + c];
            write_varint(out, zigzag(v.wrapping_sub(prev) as i64));
            prev = v;
        }
    }
}

/// Decodes a compressed payload back into a row-major flat buffer,
/// advancing `pos` past the varints consumed.
fn decompress_columns(
    arity: usize,
    rows: usize,
    bytes: &[u8],
    pos: &mut usize,
) -> Result<Vec<Value>, WireError> {
    let mut flat = vec![0u64; rows * arity];
    for c in 0..arity {
        let mut prev: u64 = 0;
        for r in 0..rows {
            let delta = unzigzag(read_varint(bytes, pos)?);
            let v = prev.wrapping_add(delta as u64);
            flat[r * arity + c] = v;
            prev = v;
        }
    }
    Ok(flat)
}

/// Encodes one vectored frame (header + payload) into an owned buffer.
/// The streaming TCP sender skips this copy by writing
/// [`vectored_header`] and the flat slice separately; channel transports
/// (which ship owned messages) and tests use this form.
///
/// # Panics
/// Panics if `flat.len() != rows * arity`.
pub fn encode_vectored(
    arity: usize,
    rows: usize,
    flat: &[Value],
    compressed: bool,
    out: &mut Vec<u8>,
) {
    assert_eq!(flat.len(), rows * arity, "flat buffer is not rows × arity");
    let header = vectored_header(arity, rows, compressed);
    out.extend_from_slice(header.as_bytes());
    if compressed {
        compress_columns(arity, rows, flat, out);
    } else {
        out.reserve(flat.len() * 8);
        for &v in flat {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Decodes one vectored frame, appending its rows to `rel`.
///
/// Returns the number of rows appended.
///
/// # Errors
/// Returns [`WireError`] on unknown flag bits, a malformed header, a
/// truncated or over-long payload, or a batch arity that disagrees with
/// `rel`.
pub fn decode_vectored_into(bytes: &[u8], rel: &mut Relation) -> Result<usize, WireError> {
    let Some(&flags) = bytes.first() else {
        return Err(WireError("empty vectored frame".into()));
    };
    if flags & !KNOWN_FLAGS != 0 {
        return Err(WireError(format!(
            "unknown vectored flag bits in {flags:#04x}"
        )));
    }
    let compressed = flags & FLAG_COMPRESSED != 0;
    let mut pos = 1usize;
    let arity = read_varint(bytes, &mut pos)?;
    let rows = read_varint(bytes, &mut pos)?;
    let arity = usize::try_from(arity).map_err(|_| WireError("arity overflow".into()))?;
    let rows = usize::try_from(rows).map_err(|_| WireError("row count overflow".into()))?;
    if arity != rel.arity() {
        return Err(WireError(format!(
            "batch arity {arity} does not match relation arity {}",
            rel.arity()
        )));
    }
    if arity == 0 {
        if pos != bytes.len() {
            return Err(WireError(format!(
                "nullary batch carries {} payload bytes",
                bytes.len() - pos
            )));
        }
        rel.push_nullary_rows(rows);
        return Ok(rows);
    }
    if compressed {
        let flat = decompress_columns(arity, rows, bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(WireError(format!(
                "compressed payload has {} trailing bytes",
                bytes.len() - pos
            )));
        }
        rel.push_rows_flat(&flat);
        return Ok(rows);
    }
    let expect = rows
        .checked_mul(arity)
        .and_then(|v| v.checked_mul(8))
        .ok_or_else(|| WireError("batch size overflow".into()))?;
    if bytes.len() - pos != expect {
        return Err(WireError(format!(
            "payload is {} bytes, expected {expect} for {rows} rows × {arity} cols",
            bytes.len() - pos
        )));
    }
    rel.push_rows_le_bytes(rows, &bytes[pos..]);
    Ok(rows)
}

/// Decodes one frame under `format`, appending its rows to `rel`.
///
/// # Errors
/// Returns [`WireError`] on any malformed input (see
/// [`decode_batch_into`] and [`decode_vectored_into`]).
pub fn decode_frame_into(
    format: WireFormat,
    bytes: &[u8],
    rel: &mut Relation,
) -> Result<usize, WireError> {
    match format {
        WireFormat::Varint => decode_batch_into(bytes, rel),
        WireFormat::Vectored => decode_vectored_into(bytes, rel),
    }
}

/// Decodes one batch into a fresh relation.
///
/// # Errors
/// Returns [`WireError`] on any malformed input (see
/// [`decode_batch_into`]).
pub fn decode_batch(bytes: &[u8]) -> Result<Relation, WireError> {
    let mut pos = 0usize;
    let _rows = read_varint(bytes, &mut pos)?;
    let arity = read_varint(bytes, &mut pos)?;
    let arity = usize::try_from(arity).map_err(|_| WireError("arity overflow".into()))?;
    let mut rel = Relation::new(arity);
    decode_batch_into(bytes, &mut rel)?;
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncated_errors() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 300);
        buf.pop();
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn varint_overlong_errors() {
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn batch_round_trips() {
        let rel = Relation::from_rows(3, [[1u64, 2, 3], [u64::MAX, 0, 7]].iter());
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        let back = decode_batch(&buf).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn empty_batch_round_trips() {
        let rel = Relation::new(4);
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        let back = decode_batch(&buf).unwrap();
        assert_eq!(back.arity(), 4);
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn nullary_batch_round_trips() {
        let mut rel = Relation::new(0);
        rel.push_nullary_rows(5);
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        assert_eq!(buf.len(), 2, "5 nullary rows encode as two header bytes");
        let back = decode_batch(&buf).unwrap();
        assert_eq!(back.arity(), 0);
        assert_eq!(back.len(), 5);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let rel = Relation::from_rows(2, [[1u64, 2]].iter());
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        let mut wrong = Relation::new(3);
        assert!(decode_batch_into(&buf, &mut wrong).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let rel = Relation::from_rows(2, [[1u64, 2], [3, 4]].iter());
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        buf.truncate(buf.len() - 1);
        assert!(decode_batch(&buf).is_err());
    }

    fn vectored_round_trip(rel: &Relation, compressed: bool) -> Relation {
        let mut buf = Vec::new();
        encode_vectored(rel.arity(), rel.len(), rel.raw(), compressed, &mut buf);
        let mut back = Relation::new(rel.arity());
        let n = decode_vectored_into(&buf, &mut back).unwrap();
        assert_eq!(n, rel.len());
        back
    }

    #[test]
    fn vectored_raw_round_trips() {
        let rel = Relation::from_rows(3, [[1u64, 2, 3], [u64::MAX, 0, 7]].iter());
        assert_eq!(vectored_round_trip(&rel, false), rel);
    }

    #[test]
    fn vectored_compressed_round_trips() {
        let rel = Relation::from_rows(2, [[1u64, 9], [2, 5], [2, u64::MAX], [1_000_000, 0]].iter());
        assert_eq!(vectored_round_trip(&rel, true), rel);
    }

    #[test]
    fn vectored_empty_and_nullary_round_trip() {
        for compressed in [false, true] {
            let empty = Relation::new(4);
            assert_eq!(vectored_round_trip(&empty, compressed).len(), 0);
            let mut nullary = Relation::new(0);
            nullary.push_nullary_rows(5);
            let back = vectored_round_trip(&nullary, compressed);
            assert_eq!((back.arity(), back.len()), (0, 5));
        }
    }

    #[test]
    fn vectored_header_matches_estimator() {
        for (arity, rows) in [(0usize, 0usize), (1, 1), (3, 127), (3, 128), (9, 100_000)] {
            let h = vectored_header(arity, rows, false);
            assert_eq!(
                h.as_bytes().len() as u64 + (rows as u64) * (arity as u64) * 8,
                vectored_frame_bytes(arity, rows),
                "estimator disagrees with header at {arity}×{rows}"
            );
        }
    }

    #[test]
    fn varint_len_matches_encoder() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(varint_len(v), buf.len(), "varint_len wrong for {v}");
        }
    }

    #[test]
    fn unknown_flag_bits_rejected() {
        let rel = Relation::from_rows(1, [[7u64]].iter());
        let mut buf = Vec::new();
        encode_vectored(1, 1, rel.raw(), false, &mut buf);
        buf[0] |= 0x40;
        let mut out = Relation::new(1);
        assert!(decode_vectored_into(&buf, &mut out).is_err());
    }

    #[test]
    fn vectored_truncation_rejected_at_every_cut() {
        let rel = Relation::from_rows(2, [[300u64, 2], [3, 400]].iter());
        for compressed in [false, true] {
            let mut buf = Vec::new();
            encode_vectored(2, 2, rel.raw(), compressed, &mut buf);
            for cut in 0..buf.len() {
                let mut out = Relation::new(2);
                assert!(
                    decode_vectored_into(&buf[..cut], &mut out).is_err(),
                    "cut at {cut} (compressed={compressed}) decoded"
                );
            }
        }
    }

    #[test]
    fn vectored_arity_mismatch_rejected() {
        let rel = Relation::from_rows(2, [[1u64, 2]].iter());
        let mut buf = Vec::new();
        encode_vectored(2, 1, rel.raw(), false, &mut buf);
        let mut wrong = Relation::new(3);
        assert!(decode_vectored_into(&buf, &mut wrong).is_err());
    }

    #[test]
    fn formats_decode_to_identical_relations() {
        let rel = Relation::from_rows(3, [[5u64, 1, 9], [5, 2, 0], [6, 2, u64::MAX]].iter());
        let mut legacy = Vec::new();
        encode_relation(&rel, &mut legacy);
        let mut vectored = Vec::new();
        encode_vectored(rel.arity(), rel.len(), rel.raw(), false, &mut vectored);
        let mut a = Relation::new(3);
        decode_frame_into(WireFormat::Varint, &legacy, &mut a).unwrap();
        let mut b = Relation::new(3);
        decode_frame_into(WireFormat::Vectored, &vectored, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, rel);
    }

    #[test]
    fn compression_shrinks_sorted_columns() {
        let rel = Relation::from_rows(2, (0..4096u64).map(|i| [i, i * 2]));
        let mut raw = Vec::new();
        encode_vectored(2, rel.len(), rel.raw(), false, &mut raw);
        let mut packed = Vec::new();
        encode_vectored(2, rel.len(), rel.raw(), true, &mut packed);
        assert!(
            raw.len() as f64 / packed.len() as f64 >= 1.5,
            "sorted columns should compress ≥1.5×: {} vs {}",
            raw.len(),
            packed.len()
        );
    }
}
