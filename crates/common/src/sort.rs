//! Index-based sorting kernels for row-major relations.
//!
//! The Tributary join's prepare phase is dominated by lexicographic
//! sorting (paper Table 5: "BR_TJ: all sorts … 73%" of local-join time),
//! so the sort itself is worth a specialized kernel instead of a generic
//! comparator sort. Everything here sorts a `u32` *index* array over a
//! row-major `&[Value]` buffer and gathers rows exactly once at the end:
//!
//! * [`sorted_indices_radix`] — a multi-column LSD radix sort. Columns
//!   are processed from the least-significant (last) to the
//!   most-significant (first); within a column, key bytes go LSB→MSB
//!   through a 256-bucket counting sort over contiguous `(key, index)`
//!   pairs. A pre-pass computes which bytes actually vary across the
//!   rows, so passes with a trivial byte histogram (dictionary-encoded
//!   values rarely use more than 3–4 of the 8 bytes) are skipped
//!   entirely — neither histogrammed nor scattered.
//! * [`sorted_indices_comparator`] — the classic comparator sort,
//!   faster below [`RADIX_MIN_ROWS`] where radix setup costs dominate.
//! * [`sorted_indices`] — dispatches between the two by input size.
//! * [`merge_runs`] — a galloping merge of two sorted index runs, used
//!   by the engine's intra-worker parallel sort to combine per-thread
//!   chunks.
//!
//! All kernels are *stable-equivalent*: equal rows keep their relative
//! index order, so chunked parallel sorts and the single-threaded path
//! produce byte-identical gathered relations.

use crate::Value;

/// Below this many rows the comparator sort wins: the radix sort pays a
/// fixed cost per varying key byte (histogram + scatter of the whole
/// pair buffer) that only amortizes at scale.
pub const RADIX_MIN_ROWS: usize = 2048;

/// Compares rows `a` and `b` of a row-major buffer lexicographically.
#[inline]
pub fn row_cmp(data: &[Value], arity: usize, a: usize, b: usize) -> std::cmp::Ordering {
    data[a * arity..(a + 1) * arity].cmp(&data[b * arity..(b + 1) * arity])
}

/// Sorted permutation of the rows `[lo, hi)` of a row-major buffer:
/// returns absolute row indices in lexicographic row order. Dispatches
/// to the radix kernel above [`RADIX_MIN_ROWS`] rows and to the
/// comparator kernel below it; both are stable.
///
/// # Panics
/// Panics if `hi * arity` exceeds the buffer or `hi < lo`.
pub fn sorted_indices(data: &[Value], arity: usize, lo: usize, hi: usize) -> Vec<u32> {
    if hi - lo >= RADIX_MIN_ROWS {
        sorted_indices_radix(data, arity, lo, hi)
    } else {
        sorted_indices_comparator(data, arity, lo, hi)
    }
}

/// Stable comparator index sort of rows `[lo, hi)` (ties broken by
/// original index, which makes `sort_unstable_by` stable in effect).
pub fn sorted_indices_comparator(data: &[Value], arity: usize, lo: usize, hi: usize) -> Vec<u32> {
    assert!(
        lo <= hi && hi * arity <= data.len(),
        "row range out of bounds"
    );
    let mut idx: Vec<u32> = (lo as u32..hi as u32).collect();
    if arity == 0 {
        return idx;
    }
    idx.sort_unstable_by(|&a, &b| row_cmp(data, arity, a as usize, b as usize).then(a.cmp(&b)));
    idx
}

/// Multi-column LSD radix index sort of rows `[lo, hi)`.
///
/// Correct at any size; use [`sorted_indices`] unless a benchmark or
/// test specifically wants this kernel.
///
/// # Panics
/// Panics if `hi * arity` exceeds the buffer or `hi < lo`.
pub fn sorted_indices_radix(data: &[Value], arity: usize, lo: usize, hi: usize) -> Vec<u32> {
    assert!(
        lo <= hi && hi * arity <= data.len(),
        "row range out of bounds"
    );
    let n = hi - lo;
    let mut idx: Vec<u32> = (lo as u32..hi as u32).collect();
    if arity == 0 || n <= 1 {
        return idx;
    }

    // Pre-pass: per column, the OR of every value XOR the first row's
    // value — a bitmask of the bits that differ anywhere. A key byte
    // whose mask slice is zero would produce a single-bucket (trivial)
    // histogram, so its counting pass is skipped outright.
    let first = &data[lo * arity..(lo + 1) * arity];
    let mut vary = vec![0u64; arity];
    for r in lo..hi {
        let row = &data[r * arity..(r + 1) * arity];
        for (c, &v) in row.iter().enumerate() {
            vary[c] |= v ^ first[c];
        }
    }
    if vary.iter().all(|&m| m == 0) {
        return idx; // all rows equal
    }

    // Bits at or above a column's highest varying bit are constant
    // across all rows, so comparing the low `width` bits compares the
    // column. When every column's varying width fits one u64 the whole
    // row packs into a single composite key and one LSD chain sorts
    // all columns at once — no per-column re-gather of the row buffer.
    let widths: Vec<u32> = vary.iter().map(|m| 64 - m.leading_zeros()).collect();
    if widths.iter().map(|&w| w as u64).sum::<u64>() <= 64 {
        composite_radix(data, arity, lo, &mut idx, &vary, &widths);
        return idx;
    }

    // Contiguous key and index arrays keep every counting pass a
    // sequential scan instead of a random gather from the row buffer.
    let mut keys: Vec<Value> = Vec::with_capacity(n);
    let mut ids: Vec<u32> = Vec::with_capacity(n);

    // LSD over columns: the last column is the least significant key.
    for col in (0..arity).rev() {
        if vary[col] == 0 {
            continue; // column is constant: any order satisfies it
        }
        keys.clear();
        keys.extend(idx.iter().map(|&i| data[i as usize * arity + col]));
        ids.clear();
        ids.extend_from_slice(&idx);
        lsd_digit_passes(&mut keys, &mut ids, vary[col]);
        idx.copy_from_slice(&ids);
    }
    idx
}

/// Sorts `idx` by a single packed key per row: each column contributes
/// its low `widths[col]` bits (everything above is constant, so the
/// packed comparison equals the lexicographic row comparison).
///
/// The row's *relative position* rides in the low bits of the same
/// `u64`, so each counting pass moves 8 bytes per row, not a padded
/// key+index pair — and because position bits sit below every key bit,
/// a full LSD chain over the packed word sorts by (key, original
/// position), which is exactly the comparator kernel's tie-break. When
/// key + position bits exceed 64, the lowest key bits are dropped from
/// the radix and runs that tie on the kept bits get a comparator
/// fix-up; uniform keys make such runs birthday-rare, and in the worst
/// case the fix-up degenerates to the comparator sort (correct, just
/// not faster).
fn composite_radix(
    data: &[Value],
    arity: usize,
    lo: usize,
    idx: &mut [u32],
    vary: &[u64],
    widths: &[u32],
) {
    let n = idx.len();
    let masks: Vec<u64> = widths
        .iter()
        .map(|&w| if w == 64 { u64::MAX } else { (1u64 << w) - 1 })
        .collect();
    // Bits to hold a relative position 0..n (n ≥ 2 here, so ≥ 1).
    let idx_bits = 64 - (n as u64 - 1).leading_zeros();
    let total_width: u32 = widths.iter().sum();
    let drop = (total_width + idx_bits).saturating_sub(64);
    // The packed vary mask mirrors the packing, so trivial composite
    // digits (constant bits that rode along inside a column) still
    // skip — and the position bits below it are never scattered at all
    // (they start in position order and stable passes keep them there).
    let mut packed_vary = 0u64;
    for (c, &m) in vary.iter().enumerate() {
        let w = widths[c];
        if w == 0 {
            continue;
        }
        packed_vary = if w == 64 { 0 } else { packed_vary << w };
        packed_vary |= m & masks[c];
    }
    let (digit, shifts) = digit_plan((packed_vary >> drop) << idx_bits);
    let mask = (1u64 << digit) - 1;
    // Every pass's histogram fills during the build scan, so the first
    // scatter starts without another pass over the keys.
    let mut hists = vec![vec![0u32; 1 << digit]; shifts.len()];
    let mut packed: Vec<u64> = Vec::with_capacity(n);
    packed.extend(idx.iter().enumerate().map(|(j, &i)| {
        let row = &data[i as usize * arity..(i as usize + 1) * arity];
        let mut key = 0u64;
        for (c, &v) in row.iter().enumerate() {
            let w = widths[c];
            if w == 0 {
                continue;
            }
            // Total width ≤ 64, so a full-width column means key == 0.
            key = if w == 64 { 0 } else { key << w };
            key |= v & masks[c];
        }
        let pk = ((key >> drop) << idx_bits) | j as u64;
        for (h, &s) in hists.iter_mut().zip(&shifts) {
            h[((pk >> s) & mask) as usize] += 1;
        }
        pk
    }));
    scatter_passes_packed(&mut packed, digit, &shifts, &hists);

    let pos_mask = (1u64 << idx_bits) - 1;
    if drop > 0 {
        // Rows tying on the kept key bits may still differ in the
        // dropped ones: comparator-sort each tied run on the full row
        // (position bits break the remaining ties, matching the
        // comparator kernel bit for bit).
        let mut s = 0usize;
        while s < n {
            let chunk = packed[s] >> idx_bits;
            let mut e = s + 1;
            while e < n && packed[e] >> idx_bits == chunk {
                e += 1;
            }
            if e - s > 1 {
                packed[s..e].sort_unstable_by(|&a, &b| {
                    let ra = (a & pos_mask) as usize + lo;
                    let rb = (b & pos_mask) as usize + lo;
                    row_cmp(data, arity, ra, rb).then(a.cmp(&b))
                });
            }
            s = e;
        }
    }
    for (dst, &p) in idx.iter_mut().zip(&packed) {
        *dst = (p & pos_mask) as u32 + lo as u32;
    }
}

/// How many bits each counting pass consumes at most. 11 bits (2048
/// buckets) keeps the scatter's write working set inside L2 while
/// needing far fewer passes than byte-at-a-time for wide keys; the
/// actual digit is balanced across the key width (e.g. a 57-bit key
/// takes five 12-bit passes rather than five 11-bit and one 2-bit).
const MAX_DIGIT_BITS: u32 = 11;

/// Balanced digit plan for the varying bit span of `vary` (non-zero):
/// digit width in bits plus the shift of each non-trivial pass.
/// Constant bits below the first varying bit and above the last are
/// never scattered, and digits whose `vary` slice is zero drop out.
fn digit_plan(vary: u64) -> (u32, Vec<u32>) {
    let base = vary.trailing_zeros();
    let span = 64 - vary.leading_zeros() - base;
    let passes = span.div_ceil(MAX_DIGIT_BITS);
    let digit = span.div_ceil(passes);
    let mask = (1u64 << digit) - 1;
    let shifts = (0..passes)
        .map(|p| base + p * digit)
        .filter(|&s| (vary >> s) & mask != 0)
        .collect();
    (digit, shifts)
}

/// LSB→MSB counting passes over parallel `keys`/`ids` arrays, skipping
/// digits whose `vary` slice is zero. Keys and indices live in separate
/// buffers (12 bytes moved per row per pass, not a padded 16-byte pair)
/// and every histogram is filled in one fused scan before the first
/// scatter. Each pass is stable, so the whole chain is.
///
/// `vary` must be non-zero and the OR of all pairwise key XORs: bits
/// above its top set bit are constant and are never scattered.
fn lsd_digit_passes(keys: &mut Vec<u64>, ids: &mut Vec<u32>, vary: u64) {
    let (digit, shifts) = digit_plan(vary);
    let buckets = 1usize << digit;
    let mask = (buckets - 1) as u64;
    let mut hists = vec![vec![0u32; buckets]; shifts.len()];
    for &k in keys.iter() {
        for (h, &s) in hists.iter_mut().zip(&shifts) {
            h[((k >> s) & mask) as usize] += 1;
        }
    }
    let mut kscratch = vec![0u64; keys.len()];
    let mut iscratch = vec![0u32; ids.len()];
    let mut offsets = vec![0u32; buckets];
    for (hist, &shift) in hists.iter().zip(&shifts) {
        let mut acc = 0u32;
        for (o, &h) in offsets.iter_mut().zip(hist) {
            *o = acc;
            acc += h;
        }
        for (&k, &i) in keys.iter().zip(ids.iter()) {
            let b = ((k >> shift) & mask) as usize;
            let pos = offsets[b] as usize;
            offsets[b] += 1;
            kscratch[pos] = k;
            iscratch[pos] = i;
        }
        std::mem::swap(keys, &mut kscratch);
        std::mem::swap(ids, &mut iscratch);
    }
}

/// The scatter chain of [`lsd_digit_passes`] for self-contained packed
/// words (key bits above position bits) with pre-filled histograms: one
/// 8-byte array is all any pass touches.
fn scatter_passes_packed(packed: &mut Vec<u64>, digit: u32, shifts: &[u32], hists: &[Vec<u32>]) {
    let buckets = 1usize << digit;
    let mask = (buckets - 1) as u64;
    let mut scratch = vec![0u64; packed.len()];
    let mut offsets = vec![0u32; buckets];
    for (hist, &shift) in hists.iter().zip(shifts) {
        let mut acc = 0u32;
        for (o, &h) in offsets.iter_mut().zip(hist) {
            *o = acc;
            acc += h;
        }
        for &k in packed.iter() {
            let b = ((k >> shift) & mask) as usize;
            scratch[offsets[b] as usize] = k;
            offsets[b] += 1;
        }
        std::mem::swap(packed, &mut scratch);
    }
}

/// Gathers rows into a fresh row-major buffer in `idx` order — the
/// single output copy of the index-sort pipeline.
pub fn gather(data: &[Value], arity: usize, idx: &[u32]) -> Vec<Value> {
    let mut out = Vec::with_capacity(idx.len() * arity);
    for &i in idx {
        out.extend_from_slice(&data[i as usize * arity..(i as usize + 1) * arity]);
    }
    out
}

/// Merges two sorted index runs into one, galloping through long
/// one-sided stretches (the same exponential-search idea as the trie
/// cursor's `seek`). Stable: ties take from `a` first, so merging
/// chunk-sorted runs in chunk order reproduces the single-threaded
/// stable sort exactly.
pub fn merge_runs(data: &[Value], arity: usize, a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if row_cmp(data, arity, a[i] as usize, b[j] as usize) != std::cmp::Ordering::Greater {
            // Take the whole stretch of `a` rows ≤ b[j] in one gallop.
            let end = gallop(a, i, |r| {
                row_cmp(data, arity, r as usize, b[j] as usize) != std::cmp::Ordering::Greater
            });
            out.extend_from_slice(&a[i..end]);
            i = end;
        } else {
            // Take the stretch of `b` rows strictly < a[i].
            let end = gallop(b, j, |r| {
                row_cmp(data, arity, r as usize, a[i] as usize) == std::cmp::Ordering::Less
            });
            out.extend_from_slice(&b[j..end]);
            j = end;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// First position `≥ from` where `take` fails (or `run.len()`), found by
/// exponential probing then binary search. Requires `take(run[from])`.
fn gallop<F: Fn(u32) -> bool>(run: &[u32], from: usize, take: F) -> usize {
    debug_assert!(take(run[from]), "gallop requires a taken first element");
    let mut offset = 1usize;
    while from + offset < run.len() && take(run[from + offset]) {
        offset <<= 1;
    }
    // Invariant: take holds at from + offset/2, fails at from + offset
    // (or that is past the end).
    let mut lo = from + offset / 2 + 1;
    let mut hi = (from + offset).min(run.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if take(run[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_of(data: &[Value], arity: usize, idx: &[u32]) -> Vec<Vec<Value>> {
        idx.iter()
            .map(|&i| data[i as usize * arity..(i as usize + 1) * arity].to_vec())
            .collect()
    }

    fn pseudo_rows(n: usize, arity: usize, domain: u64, seed: u64) -> Vec<Value> {
        (0..n * arity)
            .map(|i| crate::hash::hash64(i as u64, seed) % domain)
            .collect()
    }

    #[test]
    fn radix_matches_comparator_small_domains() {
        for arity in 1..=4 {
            for &domain in &[2u64, 50, 1 << 20, u64::MAX] {
                let data = pseudo_rows(500, arity, domain, 7 + arity as u64);
                let r = sorted_indices_radix(&data, arity, 0, 500);
                let c = sorted_indices_comparator(&data, arity, 0, 500);
                assert_eq!(r, c, "arity {arity} domain {domain}");
            }
        }
    }

    #[test]
    fn radix_is_stable_on_duplicates() {
        // All rows equal: the permutation must be the identity.
        let data = vec![9u64; 4 * 64];
        let r = sorted_indices_radix(&data, 4, 0, 64);
        assert_eq!(r, (0u32..64).collect::<Vec<_>>());
    }

    #[test]
    fn subrange_sorts_only_its_rows() {
        let data = pseudo_rows(100, 2, 1000, 3);
        let idx = sorted_indices(&data, 2, 20, 60);
        assert_eq!(idx.len(), 40);
        assert!(idx.iter().all(|&i| (20..60).contains(&(i as usize))));
        let rows = rows_of(&data, 2, &idx);
        assert!(rows.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn gather_preserves_order() {
        let data = vec![3u64, 30, 1, 10, 2, 20];
        let idx = sorted_indices_comparator(&data, 2, 0, 3);
        assert_eq!(gather(&data, 2, &idx), vec![1, 10, 2, 20, 3, 30]);
    }

    #[test]
    fn merge_runs_matches_full_sort() {
        let data = pseudo_rows(300, 3, 40, 11); // small domain → many ties
        let mid = 150;
        let a = sorted_indices_comparator(&data, 3, 0, mid);
        let b = sorted_indices_comparator(&data, 3, mid, 300);
        let merged = merge_runs(&data, 3, &a, &b);
        let full = sorted_indices_comparator(&data, 3, 0, 300);
        assert_eq!(merged, full, "stable merge must equal stable sort");
    }

    #[test]
    fn merge_runs_empty_sides() {
        let data = vec![1u64, 2, 3];
        let run = sorted_indices_comparator(&data, 1, 0, 3);
        assert_eq!(merge_runs(&data, 1, &run, &[]), run);
        assert_eq!(merge_runs(&data, 1, &[], &run), run);
    }

    #[test]
    fn nullary_and_tiny_inputs() {
        assert_eq!(sorted_indices(&[], 0, 0, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(sorted_indices_radix(&[], 0, 0, 0), Vec::<u32>::new());
        let one = vec![7u64, 8];
        assert_eq!(sorted_indices_radix(&one, 2, 0, 1), vec![0]);
    }
}
