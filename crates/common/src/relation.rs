//! Flat, row-major relation storage.
//!
//! A [`Relation`] stores `len × arity` values contiguously. Row-major flat
//! storage keeps scans and lexicographic sorts cache-friendly and lets the
//! Tributary join operate on plain `&[u64]` windows — the paper's point
//! that "sorting on the fly is cheaper than computing a B-tree on the fly"
//! (§2.2) only holds when the sort itself touches contiguous memory.

use crate::Value;
use std::fmt;

/// A fixed-arity multiset of tuples over `u64` values.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    data: Vec<Value>,
}

impl Relation {
    /// Creates an empty relation with the given arity.
    ///
    /// # Panics
    /// Panics if `arity == 0`; nullary relations are never needed here.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "relation arity must be positive");
        Relation {
            arity,
            data: Vec::new(),
        }
    }

    /// Creates an empty relation with room for `rows` tuples.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        assert!(arity > 0, "relation arity must be positive");
        Relation {
            arity,
            data: Vec::with_capacity(rows * arity),
        }
    }

    /// Builds a relation from an iterator of rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `arity`.
    pub fn from_rows<R, I>(arity: usize, rows: I) -> Self
    where
        R: AsRef<[Value]>,
        I: IntoIterator<Item = R>,
    {
        let mut rel = Relation::new(arity);
        for row in rows {
            rel.push_row(row.as_ref());
        }
        rel
    }

    /// Number of attributes per tuple.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// True when the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Appends one tuple.
    ///
    /// # Panics
    /// Panics if `row.len() != self.arity()`.
    #[inline]
    pub fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.data.extend_from_slice(row);
    }

    /// Appends every tuple of `other`.
    ///
    /// # Panics
    /// Panics if arities differ.
    pub fn extend_from(&mut self, other: &Relation) {
        assert_eq!(self.arity, other.arity, "arity mismatch in extend");
        self.data.extend_from_slice(&other.data);
    }

    /// Iterates over rows as slices.
    #[inline]
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Value]> + Clone {
        self.data.chunks_exact(self.arity)
    }

    /// Direct access to the backing buffer (row-major).
    #[inline]
    pub fn raw(&self) -> &[Value] {
        &self.data
    }

    /// Reads the value at `(row, col)` without slicing the whole row.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.data[row * self.arity + col]
    }

    /// Sorts tuples lexicographically in place.
    pub fn sort_lex(&mut self) {
        let arity = self.arity;
        if self.len() <= 1 {
            return;
        }
        // Sorting row indices then permuting does one allocation and moves
        // each row exactly once, instead of repeatedly swapping wide rows.
        let mut idx: Vec<u32> = (0..self.len() as u32).collect();
        let data = &self.data;
        idx.sort_unstable_by(|&a, &b| {
            let ra = &data[a as usize * arity..a as usize * arity + arity];
            let rb = &data[b as usize * arity..b as usize * arity + arity];
            ra.cmp(rb)
        });
        let mut out = Vec::with_capacity(self.data.len());
        for &i in &idx {
            out.extend_from_slice(&data[i as usize * arity..i as usize * arity + arity]);
        }
        self.data = out;
    }

    /// Returns a new relation whose columns are `cols` (projection with
    /// reordering), with rows sorted lexicographically.
    ///
    /// This is the preprocessing step of the Tributary join: given the
    /// global variable order, each input relation is permuted so its
    /// columns follow that order, then sorted (paper §2.2).
    ///
    /// # Panics
    /// Panics if any column index is out of range.
    pub fn sorted_by_columns(&self, cols: &[usize]) -> Relation {
        let mut out = self.project(cols);
        out.sort_lex();
        out
    }

    /// Projects onto the given columns (duplicates retained, bag semantics).
    ///
    /// # Panics
    /// Panics if any column index is out of range.
    pub fn project(&self, cols: &[usize]) -> Relation {
        assert!(
            cols.iter().all(|&c| c < self.arity),
            "projection column out of range"
        );
        let mut out = Relation::with_capacity(cols.len().max(1), self.len());
        if cols.is_empty() {
            return out;
        }
        for row in self.rows() {
            for &c in cols {
                out.data.push(row[c]);
            }
        }
        out
    }

    /// Removes duplicate tuples (sorts first); result is sorted.
    pub fn distinct(mut self) -> Relation {
        self.sort_lex();
        let arity = self.arity;
        let n = self.len();
        if n <= 1 {
            return self;
        }
        let mut out = Vec::with_capacity(self.data.len());
        out.extend_from_slice(&self.data[..arity]);
        for i in 1..n {
            let prev = &self.data[(i - 1) * arity..i * arity];
            let cur = &self.data[i * arity..(i + 1) * arity];
            if cur != prev {
                out.extend_from_slice(cur);
            }
        }
        Relation { arity, data: out }
    }

    /// Keeps only rows satisfying `pred`.
    pub fn filter<F: FnMut(&[Value]) -> bool>(&self, mut pred: F) -> Relation {
        let mut out = Relation::new(self.arity);
        for row in self.rows() {
            if pred(row) {
                out.push_row(row);
            }
        }
        out
    }

    /// True when rows are in non-decreasing lexicographic order.
    pub fn is_sorted_lex(&self) -> bool {
        let mut prev: Option<&[Value]> = None;
        for row in self.rows() {
            if let Some(p) = prev {
                if p > row {
                    return false;
                }
            }
            prev = Some(row);
        }
        true
    }

    /// Approximate heap footprint in bytes (used by the engine's memory
    /// budget, which reproduces the paper's Q4 `RS_TJ` out-of-memory FAIL).
    pub fn approx_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<Value>()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation(arity={}, len={})", self.arity, self.len())?;
        for (i, row) in self.rows().enumerate() {
            if i >= 20 {
                writeln!(f, "  … {} more rows", self.len() - 20)?;
                break;
            }
            writeln!(f, "  {row:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(rows: &[[u64; 2]]) -> Relation {
        Relation::from_rows(2, rows.iter())
    }

    #[test]
    fn push_and_read() {
        let rel = r(&[[1, 2], [3, 4]]);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.arity(), 2);
        assert_eq!(rel.row(0), &[1, 2]);
        assert_eq!(rel.row(1), &[3, 4]);
        assert_eq!(rel.value(1, 0), 3);
    }

    #[test]
    #[should_panic(expected = "arity must be positive")]
    fn zero_arity_rejected() {
        let _ = Relation::new(0);
    }

    #[test]
    fn sort_lex_orders_rows() {
        let mut rel = r(&[[2, 1], [1, 9], [2, 0], [1, 3]]);
        rel.sort_lex();
        let rows: Vec<_> = rel.rows().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![vec![1, 3], vec![1, 9], vec![2, 0], vec![2, 1]]);
        assert!(rel.is_sorted_lex());
    }

    #[test]
    fn sort_empty_and_single() {
        let mut e = Relation::new(3);
        e.sort_lex();
        assert!(e.is_empty());
        let mut s = Relation::from_rows(3, [[5u64, 4, 3]].iter());
        s.sort_lex();
        assert_eq!(s.row(0), &[5, 4, 3]);
    }

    #[test]
    fn project_reorders_columns() {
        let rel = r(&[[1, 2], [3, 4]]);
        let p = rel.project(&[1, 0]);
        assert_eq!(p.row(0), &[2, 1]);
        assert_eq!(p.row(1), &[4, 3]);
    }

    #[test]
    fn project_can_duplicate_columns() {
        let rel = r(&[[7, 8]]);
        let p = rel.project(&[0, 0, 1]);
        assert_eq!(p.row(0), &[7, 7, 8]);
    }

    #[test]
    fn sorted_by_columns_matches_manual() {
        let rel = r(&[[3, 1], [1, 2], [3, 0]]);
        let s = rel.sorted_by_columns(&[1, 0]);
        let rows: Vec<_> = s.rows().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![vec![0, 3], vec![1, 3], vec![2, 1]]);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let rel = r(&[[1, 1], [2, 2], [1, 1], [1, 1]]);
        let d = rel.distinct();
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(0), &[1, 1]);
        assert_eq!(d.row(1), &[2, 2]);
    }

    #[test]
    fn distinct_on_empty() {
        let d = Relation::new(2).distinct();
        assert!(d.is_empty());
    }

    #[test]
    fn filter_keeps_matching() {
        let rel = r(&[[1, 2], [3, 4], [5, 6]]);
        let f = rel.filter(|row| row[0] >= 3);
        assert_eq!(f.len(), 2);
        assert_eq!(f.row(0), &[3, 4]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = r(&[[1, 1]]);
        let b = r(&[[2, 2], [3, 3]]);
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.row(2), &[3, 3]);
    }

    #[test]
    fn rows_iterator_is_exact_size() {
        let rel = r(&[[1, 2], [3, 4]]);
        let it = rel.rows();
        assert_eq!(it.len(), 2);
    }
}
