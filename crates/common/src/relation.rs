//! Flat, row-major relation storage.
//!
//! A [`Relation`] stores `len × arity` values contiguously. Row-major flat
//! storage keeps scans and lexicographic sorts cache-friendly and lets the
//! Tributary join operate on plain `&[u64]` windows — the paper's point
//! that "sorting on the fly is cheaper than computing a B-tree on the fly"
//! (§2.2) only holds when the sort itself touches contiguous memory.

use crate::Value;
use std::fmt;

/// A fixed-arity multiset of tuples over `u64` values.
///
/// Arity 0 is allowed: a *nullary* relation (the result shape of a
/// boolean query) stores no values, only a row count — `true` with
/// multiplicity. All row accessors hand out empty slices for it.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    /// Row count. For `arity > 0` this always equals
    /// `data.len() / arity`; for nullary relations it is the only record
    /// of the multiset's size.
    rows: usize,
    data: Vec<Value>,
}

impl Relation {
    /// Creates an empty relation with the given arity (0 is allowed —
    /// see the type-level docs on nullary relations).
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// Creates an empty relation with room for `rows` tuples.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        Relation {
            arity,
            rows: 0,
            data: Vec::with_capacity(rows * arity),
        }
    }

    /// Builds a relation from an iterator of rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `arity`.
    pub fn from_rows<R, I>(arity: usize, rows: I) -> Self
    where
        R: AsRef<[Value]>,
        I: IntoIterator<Item = R>,
    {
        let mut rel = Relation::new(arity);
        for row in rows {
            rel.push_row(row.as_ref());
        }
        rel
    }

    /// Builds a relation directly from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `arity == 0` (nullary relations carry no buffer — use
    /// [`Relation::push_nullary_rows`]) or `data.len()` is not a multiple
    /// of `arity`.
    pub fn from_flat(arity: usize, data: Vec<Value>) -> Self {
        assert!(arity > 0, "from_flat requires a positive arity");
        assert_eq!(data.len() % arity, 0, "buffer length not a row multiple");
        Relation {
            arity,
            rows: data.len() / arity,
            data,
        }
    }

    /// 128-bit content fingerprint over arity, row count, and every value
    /// (order-sensitive). Two relations with equal fingerprints hold the
    /// same bytes up to a 2⁻¹²⁸-ish collision chance — strong enough to
    /// key the engine's sorted-view cache.
    pub fn fingerprint(&self) -> u128 {
        crate::hash::fingerprint128(self.arity as u64, self.rows as u64, &self.data)
    }

    /// Number of attributes per tuple.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()` (except for nullary relations, whose
    /// every row is the empty slice).
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Appends one tuple.
    ///
    /// # Panics
    /// Panics if `row.len() != self.arity()`.
    #[inline]
    pub fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends `n` nullary (empty) tuples.
    ///
    /// # Panics
    /// Panics if the relation is not nullary.
    pub fn push_nullary_rows(&mut self, n: usize) {
        assert_eq!(self.arity, 0, "push_nullary_rows on a non-nullary relation");
        self.rows += n;
    }

    /// Appends whole rows from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if the relation is nullary (use
    /// [`Relation::push_nullary_rows`]) or `flat.len()` is not a
    /// multiple of the arity.
    pub fn push_rows_flat(&mut self, flat: &[Value]) {
        assert!(self.arity > 0, "push_rows_flat on a nullary relation");
        assert_eq!(
            flat.len() % self.arity,
            0,
            "buffer length not a row multiple"
        );
        self.data.extend_from_slice(flat);
        self.rows += flat.len() / self.arity;
    }

    /// Appends `rows` rows decoded from row-major little-endian `u64`
    /// words — the wire format's fixed-width payload — without an
    /// intermediate row buffer.
    ///
    /// # Panics
    /// Panics if the relation is nullary or `bytes.len()` is not exactly
    /// `rows × arity × 8`.
    pub fn push_rows_le_bytes(&mut self, rows: usize, bytes: &[u8]) {
        assert!(self.arity > 0, "push_rows_le_bytes on a nullary relation");
        assert_eq!(
            bytes.len(),
            rows * self.arity * 8,
            "payload is not rows × arity words"
        );
        self.data.reserve(rows * self.arity);
        for chunk in bytes.chunks_exact(8) {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.data.push(Value::from_le_bytes(word));
        }
        self.rows += rows;
    }

    /// Appends every tuple of `other`.
    ///
    /// # Panics
    /// Panics if arities differ.
    pub fn extend_from(&mut self, other: &Relation) {
        assert_eq!(self.arity, other.arity, "arity mismatch in extend");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Iterates over rows as slices.
    #[inline]
    pub fn rows(&self) -> Rows<'_> {
        Rows {
            chunks: self.data.chunks_exact(self.arity.max(1)),
            nullary_left: if self.arity == 0 { self.rows } else { 0 },
        }
    }

    /// Direct access to the backing buffer (row-major).
    #[inline]
    pub fn raw(&self) -> &[Value] {
        &self.data
    }

    /// Reads the value at `(row, col)` without slicing the whole row.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.data[row * self.arity + col]
    }

    /// Sorts tuples lexicographically in place.
    ///
    /// Sorts row indices then permutes — one allocation, each row moved
    /// exactly once — dispatching between the LSD radix kernel and the
    /// comparator kernel by size (see [`crate::sort`]).
    pub fn sort_lex(&mut self) {
        let arity = self.arity;
        if arity == 0 || self.len() <= 1 {
            return;
        }
        let idx = crate::sort::sorted_indices(&self.data, arity, 0, self.len());
        self.data = crate::sort::gather(&self.data, arity, &idx);
    }

    /// Returns a new relation whose columns are `cols` (projection with
    /// reordering), with rows sorted lexicographically.
    ///
    /// This is the preprocessing step of the Tributary join: given the
    /// global variable order, each input relation is permuted so its
    /// columns follow that order, then sorted (paper §2.2).
    ///
    /// # Panics
    /// Panics if any column index is out of range.
    pub fn sorted_by_columns(&self, cols: &[usize]) -> Relation {
        let mut out = self.project(cols);
        out.sort_lex();
        out
    }

    /// Projects onto the given columns (duplicates retained, bag semantics).
    ///
    /// # Panics
    /// Panics if any column index is out of range.
    pub fn project(&self, cols: &[usize]) -> Relation {
        assert!(
            cols.iter().all(|&c| c < self.arity),
            "projection column out of range"
        );
        let n = self.len();
        let k = cols.len();
        // Projecting onto zero columns yields a nullary relation that
        // keeps the row count (bag semantics): each input tuple
        // contributes one empty witness.
        if k == 0 {
            let mut out = Relation::new(0);
            out.rows = n;
            return out;
        }
        // The identity permutation is a plain copy of the buffer.
        if k == self.arity && cols.iter().enumerate().all(|(i, &c)| i == c) {
            return self.clone();
        }
        // One up-front allocation written by index: the per-value
        // push/capacity-check path showed up in prepare profiles.
        let mut data = vec![0 as Value; n * k];
        for (r, row) in self.rows().enumerate() {
            let out_row = &mut data[r * k..(r + 1) * k];
            for (dst, &c) in out_row.iter_mut().zip(cols) {
                *dst = row[c];
            }
        }
        Relation {
            arity: k,
            rows: n,
            data,
        }
    }

    /// Removes duplicate tuples (sorts first); result is sorted.
    pub fn distinct(mut self) -> Relation {
        self.sort_lex();
        let arity = self.arity;
        let n = self.len();
        if arity == 0 {
            // All nullary tuples are equal; at most one survives.
            self.rows = n.min(1);
            return self;
        }
        if n <= 1 {
            return self;
        }
        let mut out = Vec::with_capacity(self.data.len());
        out.extend_from_slice(&self.data[..arity]);
        for i in 1..n {
            let prev = &self.data[(i - 1) * arity..i * arity];
            let cur = &self.data[i * arity..(i + 1) * arity];
            if cur != prev {
                out.extend_from_slice(cur);
            }
        }
        let rows = out.len() / arity;
        Relation {
            arity,
            rows,
            data: out,
        }
    }

    /// Keeps only rows satisfying `pred`.
    pub fn filter<F: FnMut(&[Value]) -> bool>(&self, mut pred: F) -> Relation {
        let mut out = Relation::new(self.arity);
        for row in self.rows() {
            if pred(row) {
                out.push_row(row);
            }
        }
        out
    }

    /// True when rows are in non-decreasing lexicographic order.
    pub fn is_sorted_lex(&self) -> bool {
        let mut prev: Option<&[Value]> = None;
        for row in self.rows() {
            if let Some(p) = prev {
                if p > row {
                    return false;
                }
            }
            prev = Some(row);
        }
        true
    }

    /// Approximate heap footprint in bytes (used by the engine's memory
    /// budget, which reproduces the paper's Q4 `RS_TJ` out-of-memory FAIL).
    pub fn approx_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<Value>()
    }
}

/// Iterator over a relation's rows as value slices.
///
/// For positive arities this is a thin wrapper over
/// [`slice::chunks_exact`]; for nullary relations it yields the empty
/// slice once per stored row.
#[derive(Clone)]
pub struct Rows<'a> {
    chunks: std::slice::ChunksExact<'a, Value>,
    nullary_left: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [Value];

    #[inline]
    fn next(&mut self) -> Option<&'a [Value]> {
        if self.nullary_left > 0 {
            self.nullary_left -= 1;
            return Some(&[]);
        }
        self.chunks.next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.chunks.len() + self.nullary_left;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation(arity={}, len={})", self.arity, self.len())?;
        for (i, row) in self.rows().enumerate() {
            if i >= 20 {
                writeln!(f, "  … {} more rows", self.len() - 20)?;
                break;
            }
            writeln!(f, "  {row:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(rows: &[[u64; 2]]) -> Relation {
        Relation::from_rows(2, rows.iter())
    }

    #[test]
    fn push_and_read() {
        let rel = r(&[[1, 2], [3, 4]]);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.arity(), 2);
        assert_eq!(rel.row(0), &[1, 2]);
        assert_eq!(rel.row(1), &[3, 4]);
        assert_eq!(rel.value(1, 0), 3);
    }

    #[test]
    fn nullary_relation_round_trips() {
        // Boolean-query shape: zero columns, real multiplicity.
        let mut rel = Relation::new(0);
        assert!(rel.is_empty());
        rel.push_row(&[]);
        rel.push_nullary_rows(2);
        assert_eq!(rel.arity(), 0);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.rows().len(), 3);
        for row in rel.rows() {
            assert!(row.is_empty());
        }
        // Sorting and distinct behave as on any multiset of equal rows.
        rel.sort_lex();
        assert_eq!(rel.len(), 3);
        let d = rel.clone().distinct();
        assert_eq!(d.len(), 1);
        // Extend keeps counting.
        let mut other = Relation::new(0);
        other.extend_from(&rel);
        assert_eq!(other.len(), 3);
    }

    #[test]
    fn project_to_zero_columns_keeps_row_count() {
        let rel = r(&[[1, 2], [3, 4], [5, 6]]);
        let p = rel.project(&[]);
        assert_eq!(p.arity(), 0);
        assert_eq!(p.len(), 3, "bag semantics: one empty witness per row");
    }

    #[test]
    fn sort_lex_orders_rows() {
        let mut rel = r(&[[2, 1], [1, 9], [2, 0], [1, 3]]);
        rel.sort_lex();
        let rows: Vec<_> = rel.rows().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![vec![1, 3], vec![1, 9], vec![2, 0], vec![2, 1]]);
        assert!(rel.is_sorted_lex());
    }

    #[test]
    fn sort_empty_and_single() {
        let mut e = Relation::new(3);
        e.sort_lex();
        assert!(e.is_empty());
        let mut s = Relation::from_rows(3, [[5u64, 4, 3]].iter());
        s.sort_lex();
        assert_eq!(s.row(0), &[5, 4, 3]);
    }

    #[test]
    fn project_reorders_columns() {
        let rel = r(&[[1, 2], [3, 4]]);
        let p = rel.project(&[1, 0]);
        assert_eq!(p.row(0), &[2, 1]);
        assert_eq!(p.row(1), &[4, 3]);
    }

    #[test]
    fn project_can_duplicate_columns() {
        let rel = r(&[[7, 8]]);
        let p = rel.project(&[0, 0, 1]);
        assert_eq!(p.row(0), &[7, 7, 8]);
    }

    #[test]
    fn sorted_by_columns_matches_manual() {
        let rel = r(&[[3, 1], [1, 2], [3, 0]]);
        let s = rel.sorted_by_columns(&[1, 0]);
        let rows: Vec<_> = s.rows().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![vec![0, 3], vec![1, 3], vec![2, 1]]);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let rel = r(&[[1, 1], [2, 2], [1, 1], [1, 1]]);
        let d = rel.distinct();
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(0), &[1, 1]);
        assert_eq!(d.row(1), &[2, 2]);
    }

    #[test]
    fn distinct_on_empty() {
        let d = Relation::new(2).distinct();
        assert!(d.is_empty());
    }

    #[test]
    fn filter_keeps_matching() {
        let rel = r(&[[1, 2], [3, 4], [5, 6]]);
        let f = rel.filter(|row| row[0] >= 3);
        assert_eq!(f.len(), 2);
        assert_eq!(f.row(0), &[3, 4]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = r(&[[1, 1]]);
        let b = r(&[[2, 2], [3, 3]]);
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.row(2), &[3, 3]);
    }

    #[test]
    fn from_flat_round_trips() {
        let rel = Relation::from_flat(2, vec![1, 2, 3, 4]);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.row(1), &[3, 4]);
    }

    #[test]
    fn project_identity_is_copy() {
        let rel = r(&[[1, 2], [3, 4]]);
        let p = rel.project(&[0, 1]);
        assert_eq!(p.raw(), rel.raw());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = r(&[[1, 2], [3, 4]]);
        let b = r(&[[1, 2], [3, 4]]);
        let c = r(&[[1, 2], [3, 5]]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Same values, different shape → different fingerprint.
        let flat = Relation::from_flat(4, vec![1, 2, 3, 4]);
        assert_ne!(a.fingerprint(), flat.fingerprint());
    }

    #[test]
    fn rows_iterator_is_exact_size() {
        let rel = r(&[[1, 2], [3, 4]]);
        let it = rel.rows();
        assert_eq!(it.len(), 2);
    }
}
