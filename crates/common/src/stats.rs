//! Load-balance statistics for shuffles.
//!
//! The paper quantifies shuffle skew as the ratio between the maximum and
//! the average load (Tables 2–4): *"the skew factor (ratio between the
//! maximum load and the average load)"*. Producer skew is computed over
//! tuples sent per source worker, consumer skew over tuples received per
//! destination worker.

/// Max/average ratio over per-worker loads. Returns 1.0 for all-zero or
/// empty inputs (a perfectly balanced no-op shuffle).
pub fn skew(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let avg = total as f64 / counts.len() as f64;
    let max = counts.iter().copied().max().unwrap_or(0) as f64;
    max / avg
}

/// Metrics for one shuffle step, in the shape of the paper's Tables 2–4.
#[derive(Debug, Clone)]
pub struct ShuffleStats {
    /// Human-readable label, e.g. `"R(x, y) ->h(y)"` or `"HCS S(y, z)"`.
    pub label: String,
    /// Total tuples placed on the (simulated) network.
    pub tuples_sent: u64,
    /// Tuples sent per producing worker.
    pub per_producer: Vec<u64>,
    /// Tuples received per consuming worker.
    pub per_consumer: Vec<u64>,
    /// Encoded batch bytes placed on the wire by all producers. Zero for
    /// the in-memory `Local` transport, which moves no bytes; under the
    /// streaming transports this is the true payload volume (transport
    /// framing overhead excluded, so `InProcess` and `Tcp` report the
    /// same number for the same shuffle).
    pub bytes_sent: u64,
    /// Uncompressed-equivalent bytes of the sent batches. Equals
    /// [`bytes_sent`](Self::bytes_sent) unless wire compression shrank
    /// the frames; the `bytes_sent_raw / bytes_sent` ratio is the
    /// compression win for this shuffle.
    pub bytes_sent_raw: u64,
    /// Encoded batch bytes drained from the wire by all consumers.
    pub bytes_received: u64,
}

impl ShuffleStats {
    /// Builds stats from per-producer/per-consumer tallies.
    pub fn new(label: impl Into<String>, per_producer: Vec<u64>, per_consumer: Vec<u64>) -> Self {
        let tuples_sent = per_consumer.iter().sum();
        ShuffleStats {
            label: label.into(),
            tuples_sent,
            per_producer,
            per_consumer,
            bytes_sent: 0,
            bytes_sent_raw: 0,
            bytes_received: 0,
        }
    }

    /// Attaches on-wire byte tallies (builder style).
    #[must_use]
    pub fn with_bytes(mut self, sent: u64, received: u64) -> Self {
        self.bytes_sent = sent;
        self.bytes_received = received;
        self
    }

    /// Attaches the uncompressed-equivalent byte tally (builder style).
    #[must_use]
    pub fn with_raw_bytes(mut self, raw: u64) -> Self {
        self.bytes_sent_raw = raw;
        self
    }

    /// Max/average tuples sent per producer.
    pub fn producer_skew(&self) -> f64 {
        skew(&self.per_producer)
    }

    /// Max/average tuples received per consumer.
    pub fn consumer_skew(&self) -> f64 {
        skew(&self.per_consumer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_balanced_is_one() {
        assert!((skew(&[10, 10, 10, 10]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_empty_and_zero() {
        assert_eq!(skew(&[]), 1.0);
        assert_eq!(skew(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn skew_single_hot_worker() {
        // One worker gets everything among 4: max=100, avg=25 → 4.0.
        assert!((skew(&[100, 0, 0, 0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn shuffle_stats_totals() {
        let s = ShuffleStats::new("t", vec![5, 5], vec![2, 8]);
        assert_eq!(s.tuples_sent, 10);
        assert!((s.producer_skew() - 1.0).abs() < 1e-12);
        assert!((s.consumer_skew() - 1.6).abs() < 1e-12);
    }
}
