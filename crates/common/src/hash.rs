//! Independent hash functions for shuffles.
//!
//! The HyperCube shuffle requires one *independently chosen* hash function
//! per join variable (paper §2.1): a tuple `S₁(a, b)` is routed to the cell
//! `(h₁(a), h₂(b), ⋆)`. We derive the family from a strong 64-bit mixer
//! (SplitMix64 finalizer) keyed by a per-dimension seed. The mixer's
//! avalanche behaviour is what keeps the per-bucket loads near-uniform for
//! non-adversarial keys, which the skew experiments depend on.

use crate::Value;

/// Mixes a value with a seed into a well-distributed 64-bit hash.
///
/// This is the SplitMix64 finalizer applied to `x ^ rotated-seed`; distinct
/// seeds give effectively independent functions.
#[inline]
pub fn hash64(x: Value, seed: u64) -> u64 {
    let mut z = x ^ seed.rotate_left(25) ^ 0x9e37_79b9_7f4a_7c15;
    z = z.wrapping_add(seed);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes `x` into one of `buckets` buckets using the seeded family.
///
/// # Panics
/// Panics if `buckets == 0`.
#[inline]
pub fn bucket(x: Value, seed: u64, buckets: usize) -> usize {
    assert!(buckets > 0, "bucket count must be positive");
    // Multiply-shift range reduction avoids the modulo bias and the div.
    ((hash64(x, seed) as u128 * buckets as u128) >> 64) as usize
}

/// Hashes a composite key (several attribute values) into one of `buckets`
/// buckets. Used by the regular shuffle when partitioning on multiple join
/// attributes at once.
#[inline]
pub fn bucket_row(vals: &[Value], seed: u64, buckets: usize) -> usize {
    assert!(buckets > 0, "bucket count must be positive");
    let mut acc = seed ^ 0x51_7c_c1_b7_27_22_0a_95;
    for &v in vals {
        acc = hash64(v, acc);
    }
    ((acc as u128 * buckets as u128) >> 64) as usize
}

/// 128-bit fingerprint of a (arity, rows, values) triple: two
/// independently seeded [`hash64`] chains over the same stream, packed
/// into a `u128`. One 64-bit chain would make cache-key collisions
/// merely unlikely; two independent chains make them negligible, which
/// is the bar for a cache that silently substitutes its entry for a
/// fresh sort.
pub fn fingerprint128(arity: u64, rows: u64, data: &[Value]) -> u128 {
    let mut lo = hash64(arity, 0x9e37_79b9_7f4a_7c15);
    let mut hi = hash64(arity, 0xc2b2_ae3d_27d4_eb4f);
    lo = hash64(rows, lo);
    hi = hash64(rows, hi);
    for &v in data {
        lo = hash64(v, lo);
        hi = hash64(v, hi);
    }
    ((hi as u128) << 64) | lo as u128
}

/// Derives the per-dimension seed for hypercube dimension `dim` from a
/// query-level base seed. Each shuffle of the same query must reuse the
/// same seeds so that co-joining tuples meet (paper §2.1).
#[inline]
pub fn dimension_seed(base: u64, dim: usize) -> u64 {
    hash64(dim as u64 + 1, base ^ 0xa076_1d64_78bd_642f)
}

/// Derives the seed for hashing on a specific key-attribute set,
/// identified by its sorted attribute ids. Both sides of a join
/// partition with the seed of the same id set, so co-joining tuples
/// meet; the engine's `join_key_seed` and the analyzer's policy model
/// must derive *identical* seeds, which is why the fold lives here.
pub fn key_seed(base: u64, sorted_ids: &[u64]) -> u64 {
    let mut acc = base ^ 0xc3a5_c85c_97cb_3127;
    for &v in sorted_ids {
        acc = hash64(v, acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(42, 7), hash64(42, 7));
        assert_eq!(bucket(42, 7, 10), bucket(42, 7, 10));
    }

    #[test]
    fn seeds_give_different_functions() {
        // Two seeds should disagree on many inputs.
        let disagreements = (0..1000u64)
            .filter(|&x| bucket(x, 1, 16) != bucket(x, 2, 16))
            .count();
        assert!(disagreements > 800, "only {disagreements} disagreements");
    }

    #[test]
    fn buckets_in_range() {
        for x in 0..500u64 {
            for b in [1usize, 2, 3, 5, 64] {
                assert!(bucket(x, 99, b) < b);
            }
        }
    }

    #[test]
    fn single_bucket_is_zero() {
        for x in 0..100u64 {
            assert_eq!(bucket(x, 3, 1), 0);
        }
    }

    #[test]
    fn distribution_roughly_uniform() {
        let b = 8;
        let n = 80_000u64;
        let mut counts = vec![0usize; b];
        for x in 0..n {
            counts[bucket(x, 12345, b)] += 1;
        }
        let expected = n as usize / b;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.05,
                "bucket {i} count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn bucket_row_depends_on_all_values() {
        let a = bucket_row(&[1, 2], 9, 1024);
        let b = bucket_row(&[1, 3], 9, 1024);
        let c = bucket_row(&[2, 2], 9, 1024);
        // With 1024 buckets, collisions across all three are vanishingly
        // unlikely for a good hash.
        assert!(a != b || a != c);
    }

    #[test]
    fn dimension_seeds_distinct() {
        let s: Vec<u64> = (0..8).map(|d| dimension_seed(77, d)).collect();
        for i in 0..8 {
            for j in i + 1..8 {
                assert_ne!(s[i], s[j]);
            }
        }
    }
}
