#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parjoin-common
//!
//! Foundation types shared by every `parjoin` crate:
//!
//! * [`Relation`] — a flat, row-major, fixed-arity table of `u64` values.
//!   This is the in-memory representation of both base relations and
//!   intermediate join results. Tributary join requires lexicographically
//!   sorted relations; [`Relation::sorted_by_columns`] produces the
//!   column-permuted, row-sorted copy used there.
//! * [`Database`] — a named catalog of relations.
//! * [`hash`] — the independent per-dimension hash functions required by
//!   the HyperCube shuffle ("hᵢ is a hash function chosen independently
//!   for xᵢ", paper §2.1).
//! * [`sort`] — index-based sorting kernels (multi-column LSD radix sort,
//!   comparator fallback, galloping run merge) behind
//!   [`Relation::sort_lex`] and the engine's parallel prepare.
//! * [`stats`] — skew metrics (max/average load ratios) exactly as reported
//!   in the paper's Tables 2–4.
//! * [`threads`] — the workspace's two thread-count heuristics (phase
//!   pool width, per-worker leftover cores), deduplicated here so the
//!   concurrency lint wall has one site to audit.

pub mod db;
pub mod hash;
pub mod relation;
pub mod sort;
pub mod stats;
pub mod threads;
pub mod wire;

pub use db::Database;
pub use relation::Relation;
pub use stats::{skew, ShuffleStats};
pub use wire::{WireError, WireFormat};

/// The value domain: every attribute value is a dictionary-encoded `u64`.
pub type Value = u64;
