//! Control-plane frames: plans (and their results) on the wire.
//!
//! The data plane ships tuple batches with the formats in
//! [`wire`](super); the *control* plane — a coordinator distributing
//! plan fragments to worker processes and collecting their outputs —
//! needs its own framing, because the two ends of a control connection
//! may be different builds of different versions. Every control frame
//! therefore leads with a magic/version header:
//!
//! ```text
//! frame := "PJCP"  u16-LE version  u8 kind  u32-LE payload length  payload
//! ```
//!
//! A reader that sees the wrong magic, an unsupported version, or an
//! unknown frame kind fails with a **typed** [`ControlError`] — never a
//! guess at the payload. Payload layouts are version-scoped: within
//! protocol version [`VERSION`], payloads are built from the fixed-width
//! little-endian primitives below ([`put_u64`], [`PayloadReader`], …)
//! plus the batch encodings of the parent module for relation data.
//!
//! Frame kinds are deliberately few; the fragment payload itself (what a
//! worker needs to execute its share of a plan) is defined by the engine
//! on top of these primitives, keeping this module free of plan types.

use std::fmt;
use std::io::{Read, Write};

/// Magic bytes opening every control frame ("ParJoin Control Protocol").
pub const MAGIC: [u8; 4] = *b"PJCP";

/// Control protocol version this build speaks.
pub const VERSION: u16 = 1;

/// Fixed size of the frame header: magic, version, kind, payload length.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 4;

/// Default ceiling on a control frame's payload (256 MiB): fragments
/// carry seeded partitions, so they are orders of magnitude larger than
/// data-plane batches, but an absurd length prefix is still better
/// rejected than allocated.
pub const DEFAULT_FRAME_LIMIT: u32 = 256 << 20;

/// Typed decode failures of the control protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlError {
    /// The stream does not open with the `PJCP` magic — the peer is not
    /// speaking the control protocol at all.
    BadMagic {
        /// The four bytes that arrived instead of the magic.
        got: [u8; 4],
    },
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion {
        /// Version announced by the peer.
        got: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The frame kind byte names no known kind in this version.
    UnknownKind(u8),
    /// The declared payload length exceeds the configured limit.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// Limit in force.
        limit: u32,
    },
    /// The stream ended inside a header or payload.
    Truncated(String),
    /// A structurally invalid payload (bad UTF-8, counts that disagree
    /// with the remaining bytes, trailing garbage).
    Malformed(String),
    /// An OS-level I/O failure on the control connection.
    Io(String),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::BadMagic { got } => {
                write!(
                    f,
                    "control frame does not start with PJCP magic (got {got:02x?})"
                )
            }
            ControlError::UnsupportedVersion { got, supported } => write!(
                f,
                "control protocol version {got} is not supported (this build speaks {supported})"
            ),
            ControlError::UnknownKind(k) => {
                write!(f, "unknown control frame kind {k:#04x}")
            }
            ControlError::Oversized { len, limit } => write!(
                f,
                "control frame declares a {len}-byte payload, above the {limit}-byte limit"
            ),
            ControlError::Truncated(m) => write!(f, "control stream truncated: {m}"),
            ControlError::Malformed(m) => write!(f, "malformed control payload: {m}"),
            ControlError::Io(m) => write!(f, "control connection I/O error: {m}"),
        }
    }
}

impl std::error::Error for ControlError {}

/// What a control frame carries. The numeric codes are wire-stable
/// within a protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Worker → coordinator: "I am up", carrying the worker's data-plane
    /// listener address.
    Ready,
    /// Coordinator → worker: one serialized plan fragment (spec, global
    /// plan decisions, and this rank's seeded partitions).
    Fragment,
    /// Worker → coordinator: one batch of this rank's output partition,
    /// encoded with the parent module's batch format.
    OutputBatch,
    /// Worker → coordinator: end of output, carrying the worker's
    /// execution metrics for reconciliation.
    OutputDone,
    /// Either direction: a typed failure rendered as text; the sender is
    /// about to close the connection.
    Error,
    /// Coordinator → worker: orderly shutdown request.
    Shutdown,
}

impl FrameKind {
    /// Wire code of this kind.
    pub fn code(self) -> u8 {
        match self {
            FrameKind::Ready => 1,
            FrameKind::Fragment => 2,
            FrameKind::OutputBatch => 3,
            FrameKind::OutputDone => 4,
            FrameKind::Error => 5,
            FrameKind::Shutdown => 6,
        }
    }

    /// Decodes a wire code.
    ///
    /// # Errors
    /// [`ControlError::UnknownKind`] for codes this version does not define.
    pub fn from_code(code: u8) -> Result<FrameKind, ControlError> {
        Ok(match code {
            1 => FrameKind::Ready,
            2 => FrameKind::Fragment,
            3 => FrameKind::OutputBatch,
            4 => FrameKind::OutputDone,
            5 => FrameKind::Error,
            6 => FrameKind::Shutdown,
            other => return Err(ControlError::UnknownKind(other)),
        })
    }
}

/// Writes one framed control message (header + payload) and flushes.
///
/// # Errors
/// [`ControlError::Oversized`] when the payload exceeds
/// [`DEFAULT_FRAME_LIMIT`], [`ControlError::Io`] on socket failure.
pub fn write_frame<W: Write>(
    w: &mut W,
    kind: FrameKind,
    payload: &[u8],
) -> Result<(), ControlError> {
    let len = u32::try_from(payload.len()).map_err(|_| ControlError::Oversized {
        len: u32::MAX,
        limit: DEFAULT_FRAME_LIMIT,
    })?;
    if len > DEFAULT_FRAME_LIMIT {
        return Err(ControlError::Oversized {
            len,
            limit: DEFAULT_FRAME_LIMIT,
        });
    }
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6] = kind.code();
    header[7..11].copy_from_slice(&len.to_le_bytes());
    let io = |e: std::io::Error| ControlError::Io(e.to_string());
    w.write_all(&header).map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.flush().map_err(io)
}

/// Reads one framed control message, validating magic, version, kind
/// and length before allocating the payload.
///
/// # Errors
/// Every [`ControlError`] variant: bad magic, an unsupported version
/// (the typed unknown-version error the protocol guarantees), an
/// unknown kind, an oversized or truncated frame, or socket failure.
pub fn read_frame<R: Read>(r: &mut R, limit: u32) -> Result<(FrameKind, Vec<u8>), ControlError> {
    let mut header = [0u8; HEADER_LEN];
    read_exactly(r, &mut header, "frame header")?;
    let mut got_magic = [0u8; 4];
    got_magic.copy_from_slice(&header[..4]);
    if got_magic != MAGIC {
        return Err(ControlError::BadMagic { got: got_magic });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(ControlError::UnsupportedVersion {
            got: version,
            supported: VERSION,
        });
    }
    let kind = FrameKind::from_code(header[6])?;
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]);
    if len > limit {
        return Err(ControlError::Oversized { len, limit });
    }
    let mut payload = vec![0u8; len as usize];
    read_exactly(r, &mut payload, "frame payload")?;
    Ok((kind, payload))
}

/// `read_exact` with EINTR retries and typed truncation errors.
fn read_exactly<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), ControlError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(ControlError::Truncated(format!(
                    "stream closed {got} bytes into a {}-byte {what}",
                    buf.len()
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {} // EINTR: retry
            Err(e) => return Err(ControlError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Appends a `u8` to a payload under construction.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends `Some`/`None` as a presence byte followed by the value.
pub fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            put_u8(buf, 1);
            put_u64(buf, v);
        }
        None => put_u8(buf, 0),
    }
}

/// Sequential reader over a control payload, with typed errors on
/// truncation and a [`done`](Self::done) check against trailing bytes.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    /// [`ControlError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ControlError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ControlError::Truncated(format!(
                "payload needs {n} more bytes at offset {}, but only {} remain",
                self.pos,
                self.buf.len() - self.pos
            ))),
        }
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    /// [`ControlError::Truncated`] at end of payload.
    pub fn u8(&mut self) -> Result<u8, ControlError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`ControlError::Truncated`] at end of payload.
    pub fn u32(&mut self) -> Result<u32, ControlError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`ControlError::Truncated`] at end of payload.
    pub fn u64(&mut self) -> Result<u64, ControlError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`ControlError::Truncated`] / [`ControlError::Malformed`] on a
    /// short or non-UTF-8 payload.
    pub fn str(&mut self) -> Result<String, ControlError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| ControlError::Malformed(format!("non-UTF-8 string: {e}")))
    }

    /// Reads a presence byte followed by a `u64` when present.
    ///
    /// # Errors
    /// [`ControlError::Truncated`] / [`ControlError::Malformed`] on a
    /// short payload or an invalid presence byte.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, ControlError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(ControlError::Malformed(format!(
                "invalid option tag {other} (expected 0 or 1)"
            ))),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    /// [`ControlError::Malformed`] when trailing bytes remain.
    pub fn done(&self) -> Result<(), ControlError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ControlError::Malformed(format!(
                "{} trailing byte(s) after the last field",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Fragment, b"hello plan").expect("write");
        write_frame(&mut wire, FrameKind::OutputDone, b"").expect("write empty");
        let mut r = &wire[..];
        let (kind, payload) = read_frame(&mut r, DEFAULT_FRAME_LIMIT).expect("read 1");
        assert_eq!(kind, FrameKind::Fragment);
        assert_eq!(payload, b"hello plan");
        let (kind, payload) = read_frame(&mut r, DEFAULT_FRAME_LIMIT).expect("read 2");
        assert_eq!(kind, FrameKind::OutputDone);
        assert!(payload.is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn unknown_version_is_a_typed_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Ready, b"x").expect("write");
        wire[4..6].copy_from_slice(&7u16.to_le_bytes());
        let err = read_frame(&mut &wire[..], DEFAULT_FRAME_LIMIT);
        assert_eq!(
            err,
            Err(ControlError::UnsupportedVersion {
                got: 7,
                supported: VERSION
            })
        );
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let wire = b"HTTP/1.1 200 OK\r\n".to_vec();
        let err = read_frame(&mut &wire[..], DEFAULT_FRAME_LIMIT);
        assert_eq!(err, Err(ControlError::BadMagic { got: *b"HTTP" }));
    }

    #[test]
    fn unknown_kind_is_a_typed_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Ready, b"").expect("write");
        wire[6] = 0xEE;
        let err = read_frame(&mut &wire[..], DEFAULT_FRAME_LIMIT);
        assert_eq!(err, Err(ControlError::UnknownKind(0xEE)));
    }

    #[test]
    fn oversized_and_truncated_frames_are_typed_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Fragment, &[0u8; 64]).expect("write");
        let err = read_frame(&mut &wire[..], 16);
        assert_eq!(err, Err(ControlError::Oversized { len: 64, limit: 16 }));
        let cut = &wire[..HEADER_LEN + 10];
        let err = read_frame(&mut &cut[..], DEFAULT_FRAME_LIMIT);
        assert!(
            matches!(err, Err(ControlError::Truncated(ref m)) if m.contains("payload")),
            "short payload must be typed: {err:?}"
        );
    }

    #[test]
    fn payload_primitives_round_trip_and_reject_trailing_bytes() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 3);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "twitter → q1");
        put_opt_u64(&mut buf, Some(42));
        put_opt_u64(&mut buf, None);
        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.u8().expect("u8"), 3);
        assert_eq!(r.u32().expect("u32"), 70_000);
        assert_eq!(r.u64().expect("u64"), u64::MAX - 1);
        assert_eq!(r.str().expect("str"), "twitter → q1");
        assert_eq!(r.opt_u64().expect("some"), Some(42));
        assert_eq!(r.opt_u64().expect("none"), None);
        r.done().expect("fully consumed");

        let mut r = PayloadReader::new(&buf);
        let _ = r.u8().expect("u8");
        assert!(
            matches!(r.done(), Err(ControlError::Malformed(_))),
            "trailing bytes must be rejected"
        );
        let mut r = PayloadReader::new(&[1]);
        assert!(matches!(r.u64(), Err(ControlError::Truncated(_))));
    }
}
