//! The CI serve smoke: an in-process `parjoin-serve` server under
//! open-loop overload.
//!
//! * loads the tiny Twitter + Freebase catalogs,
//! * fires 200 mixed Q1–Q8 submissions as fast as possible — far
//!   beyond 2× the admission cap (queue capacity + executors) — and
//!   asserts overload is shed with the *typed* queue-full error,
//! * byte-compares every completed query against a batch baseline run
//!   with identical advisor decision, cluster, and options,
//! * checks the latency report is strict JSON carrying the reconciled
//!   `serve.*` counters,
//! * asserts shutdown drains and then rejects with the typed
//!   shutting-down error.

use parjoin_core::queries;
use parjoin_datagen::workloads::Scale;
use parjoin_serve::{
    batch_run, ConfigChoice, ServeError, Server, ServerConfig, SessionConfig, Ticket, TrafficReport,
};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

const QUEUE_CAPACITY: usize = 6;
const EXECUTORS: usize = 2;
const FLOOD: usize = 200;

struct Baseline {
    config: String,
    arity: usize,
    raw: Vec<u64>,
    output_tuples: u64,
}

fn start_loaded_server() -> Server {
    let server = Server::start(ServerConfig {
        workers: 4,
        seed: 11,
        queue_capacity: QUEUE_CAPACITY,
        session_cap: 2 * (QUEUE_CAPACITY + EXECUTORS),
        executors: Some(EXECUTORS),
    });
    let scale = Scale::tiny();
    server.load_db(&scale.twitter_db(7));
    server.load_db(&scale.freebase_db(7));
    server
}

fn baselines(server: &Server, cfg: &SessionConfig) -> BTreeMap<&'static str, Baseline> {
    let snapshot = server.snapshot();
    let cluster = server.cluster();
    queries::NAMES
        .iter()
        .map(|&name| {
            let query = queries::build(name).expect("registered");
            let result =
                batch_run(&query, &snapshot.db, &cluster, cfg).expect("batch baseline runs");
            let out = result.output.as_ref().expect("collected output");
            (
                name,
                Baseline {
                    config: result.config.clone(),
                    arity: out.arity(),
                    raw: out.raw().to_vec(),
                    output_tuples: result.output_tuples,
                },
            )
        })
        .collect()
}

fn assert_matches_baseline(
    name: &str,
    outcome: &parjoin_serve::QueryOutcome,
    baselines: &BTreeMap<&'static str, Baseline>,
) {
    let base = &baselines[name];
    assert_eq!(
        outcome.config, base.config,
        "{name}: served config drifted from the batch advisor decision"
    );
    assert_eq!(
        outcome.result.output_tuples, base.output_tuples,
        "{name}: output count drifted"
    );
    let out = outcome.result.output.as_ref().expect("collected output");
    assert_eq!(out.arity(), base.arity, "{name}: arity drifted");
    assert_eq!(
        out.raw(),
        &base.raw[..],
        "{name}: served output is not byte-identical to the batch run"
    );
}

#[test]
fn overloaded_server_sheds_typed_and_serves_byte_identical() {
    let server = start_loaded_server();
    let session_cfg = SessionConfig::default();
    let base = baselines(&server, &session_cfg);

    let session = server.session(session_cfg);
    let t0 = Instant::now();
    let mut accepted: Vec<(&str, Ticket)> = Vec::new();
    let mut queue_full = 0usize;
    for i in 0..FLOOD {
        let name = queries::NAMES[i % queries::NAMES.len()];
        match session.submit_named(name) {
            Ok(ticket) => accepted.push((name, ticket)),
            Err(ServeError::QueueFull { capacity }) => {
                assert_eq!(capacity, QUEUE_CAPACITY, "typed error carries the cap");
                queue_full += 1;
            }
            Err(other) => panic!("unexpected rejection for {name}: {other}"),
        }
    }
    assert!(
        queue_full > 0,
        "an open-loop flood of {FLOOD} must overflow a {QUEUE_CAPACITY}-slot queue"
    );
    assert!(!accepted.is_empty(), "some queries must be admitted");
    assert_eq!(accepted.len() + queue_full, FLOOD);

    let mut latencies: Vec<Duration> = Vec::new();
    for (name, ticket) in accepted {
        let outcome = ticket.wait().expect("admitted queries complete");
        assert_matches_baseline(name, &outcome, &base);
        assert!(outcome.latency >= outcome.queued);
        latencies.push(outcome.latency);
    }

    // Coverage pass: every workload query at least once, served after
    // the flood warmed the SortCache.
    for &name in &queries::NAMES {
        let outcome = session
            .submit_named(name)
            .expect("idle server admits")
            .wait()
            .expect("completes");
        assert_matches_baseline(name, &outcome, &base);
        latencies.push(outcome.latency);
    }

    // Counters reconcile with what the client observed.
    let completed = latencies.len() as u64;
    assert_eq!(
        server.metric("serve.queries.completed"),
        Some(completed),
        "completed counter"
    );
    assert_eq!(
        server.metric("serve.rejected.queue_full"),
        Some(queue_full as u64),
        "queue-full counter"
    );
    assert_eq!(server.metric("serve.queries.failed"), None, "no failures");

    // The latency report parses as strict JSON and carries the counters.
    let report =
        TrafficReport::from_latencies(&latencies, t0.elapsed()).expect("queries completed");
    let json_text = report.to_json(&server.metrics());
    let doc = parjoin_obs::json::parse(&json_text)
        .unwrap_or_else(|e| panic!("latency report must parse: {e}\n{json_text}"));
    assert_eq!(
        doc.get("completed").and_then(|v| v.as_f64()),
        Some(completed as f64)
    );
    assert!(doc.get("p50_ms").and_then(|v| v.as_f64()).is_some());
    assert!(doc.get("p99_ms").and_then(|v| v.as_f64()).is_some());
    let counters = doc.get("counters").expect("counters object");
    assert_eq!(
        counters
            .get("serve.rejected.queue_full")
            .and_then(|v| v.as_f64()),
        Some(queue_full as f64)
    );

    // Graceful shutdown: drains, then rejects with the typed error.
    server.shutdown();
    match session.submit_named("Q1") {
        Err(ServeError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

#[test]
fn bind_errors_reject_before_scheduling() {
    let server = Server::start(ServerConfig {
        executors: Some(1),
        ..ServerConfig::default()
    });
    server.load_db(&Scale::tiny().twitter_db(7));
    let session = server.session(SessionConfig::default());

    // Unknown relation: Q110 with the known-relation list.
    let err = session
        .submit("Bad(x,y) :- Nope(x,y).")
        .expect_err("must not bind");
    match err {
        ServeError::Bind(diags) => {
            assert_eq!(diags.len(), 1);
            assert_eq!(diags[0].code.code(), "Q110");
            let known = diags[0].context_value("known").expect("known list");
            assert!(known.contains("Twitter"), "got {known}");
        }
        other => panic!("expected Bind, got {other:?}"),
    }

    // A Freebase query against a Twitter-only catalog binds nothing.
    let err = session.submit_named("Q3").expect_err("must not bind");
    match err {
        ServeError::Bind(diags) => {
            assert!(diags.iter().all(|d| d.code.code() == "Q110"));
            assert!(!diags.is_empty());
        }
        other => panic!("expected Bind, got {other:?}"),
    }

    // Wrong arity: Q111 carries both arities.
    let err = session
        .submit("Bad(x,y,z) :- Twitter(x,y,z).")
        .expect_err("arity mismatch");
    match err {
        ServeError::Bind(diags) => {
            assert_eq!(diags[0].code.code(), "Q111");
            assert_eq!(diags[0].context_value("catalog_arity"), Some("2"));
            assert_eq!(diags[0].context_value("query_arity"), Some("3"));
        }
        other => panic!("expected Bind, got {other:?}"),
    }

    // Parse errors are typed too, and nothing was scheduled for any of
    // the rejections above.
    assert!(matches!(
        session.submit("this is not datalog"),
        Err(ServeError::Parse(_))
    ));
    assert_eq!(server.metric("serve.queries.accepted"), None);
    assert_eq!(server.metric("serve.rejected.bind"), Some(3));
    assert_eq!(server.metric("serve.rejected.parse"), Some(1));
    server.shutdown();
}

#[test]
fn session_cap_rejects_with_typed_error() {
    let server = Server::start(ServerConfig {
        workers: 4,
        seed: 11,
        queue_capacity: 8,
        session_cap: 1,
        executors: Some(1),
    });
    server.load_db(&Scale::tiny().twitter_db(7));
    let session = server.session(SessionConfig::default());

    // One slow-ish query in flight; the second submission exceeds the
    // per-session cap even though the queue has room.
    let ticket = session.submit_named("Q2").expect("first admitted");
    let err = session.submit_named("Q1").expect_err("cap is 1");
    match err {
        ServeError::SessionLimit { in_flight, cap } => {
            assert_eq!((in_flight, cap), (1, 1));
        }
        other => panic!("expected SessionLimit, got {other:?}"),
    }
    ticket.wait().expect("completes");
    // Slot released: admission works again.
    session
        .submit_named("Q1")
        .expect("slot freed")
        .wait()
        .expect("completes");
    assert_eq!(server.metric("serve.rejected.session_cap"), Some(1));
    server.shutdown();
}

#[test]
fn repeat_queries_warm_the_trie_cache_with_certified_provenance() {
    let server = start_loaded_server();
    // Pin a Tributary config: the columnar probe path is what populates
    // the TrieCache (hash joins never touch it).
    let session = server.session(SessionConfig {
        choice: ConfigChoice::parse("HC_TJ").expect("known config"),
        ..SessionConfig::default()
    });
    let first = session
        .submit_named("Q1")
        .expect("admitted")
        .wait()
        .expect("completes");
    let second = session
        .submit_named("Q1")
        .expect("admitted")
        .wait()
        .expect("completes");
    assert_eq!(
        first.result.output.as_ref().expect("collected").raw(),
        second.result.output.as_ref().expect("collected").raw(),
        "warm run must be byte-identical to the cold run"
    );
    // The repeat reuses whole prepared tries: every per-atom lookup of
    // the warm run hits, none misses.
    assert!(
        second.result.trie_cache_hits > 0,
        "warm run must hit the TrieCache, got {:?}",
        second.result
    );
    assert_eq!(
        second.result.trie_cache_misses, 0,
        "warm run must not rebuild any trie"
    );
    // Certify mode is on (the session default): the hits are
    // route-proved, not content-assumed, and the resident entries carry
    // the catalog-versioned provenance stamps.
    assert!(
        second.result.trie_cache_certified_hits > 0,
        "warm hits must be route-certified under certify mode"
    );
    let stamps = parjoin_engine::TrieCache::global().resident_provenance();
    assert!(
        stamps.iter().any(|p| p.query.starts_with("catalog@v")),
        "resident certified tries must carry catalog provenance, got {stamps:?}"
    );
    // The serve-level counters mirror the per-run tallies.
    assert!(
        server.metric("serve.triecache.hits").unwrap_or(0) >= second.result.trie_cache_hits,
        "serve.triecache.hits must aggregate the per-run hits"
    );
    assert!(
        server.metric("serve.triecache.certified_hits").unwrap_or(0)
            >= second.result.trie_cache_certified_hits,
        "serve.triecache.certified_hits must aggregate the per-run certified hits"
    );
    server.shutdown();
}

#[test]
fn catalog_reload_changes_version_and_results_stay_consistent() {
    let server = start_loaded_server();
    let session = server.session(SessionConfig::default());
    let v1 = server.catalog_version();
    let first = session
        .submit_named("Q1")
        .expect("admitted")
        .wait()
        .expect("completes");
    assert_eq!(first.catalog_version, v1);

    // Reload Twitter with a different seed: new version, new answers —
    // but queries submitted before the reload already hold their
    // snapshot.
    server.load_db(&Scale::tiny().twitter_db(8));
    assert!(server.catalog_version() > v1);
    let second = session
        .submit_named("Q1")
        .expect("admitted")
        .wait()
        .expect("completes");
    assert_eq!(second.catalog_version, server.catalog_version());
    assert_ne!(
        first.result.output.as_ref().expect("collected").raw(),
        second.result.output.as_ref().expect("collected").raw(),
        "reloaded relation must change the answer"
    );
    server.shutdown();
}
