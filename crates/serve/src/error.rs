//! Typed errors the serving layer returns to clients.
//!
//! Admission control is only useful if rejection is *distinguishable*:
//! a client that got [`ServeError::QueueFull`] should back off and
//! retry, one that got [`ServeError::Bind`] should fix its query, and
//! one that got [`ServeError::ShuttingDown`] should reconnect
//! elsewhere. Everything is a plain enum variant — no string matching
//! required.

use parjoin_analyze::Diagnostic;
use parjoin_engine::EngineError;
use parjoin_query::parser::ParseError;
use std::fmt;

/// Everything that can go wrong between submitting query text and
/// receiving a result.
#[derive(Debug)]
pub enum ServeError {
    /// The Datalog text failed to parse.
    Parse(ParseError),
    /// The query parsed but does not bind against the resident catalog
    /// (unknown relation, wrong arity). Carries the bind diagnostics;
    /// the `Q110` unknown-relation diagnostic includes the full
    /// known-relation list as context. Detected on the session thread
    /// before any scheduling work.
    Bind(Vec<Diagnostic>),
    /// The submission names a query absent from the
    /// [`parjoin_core::queries`] registry.
    UnknownQuery(String),
    /// The run queue is at capacity; the query was rejected at
    /// admission. Back off and retry.
    QueueFull {
        /// The configured run-queue capacity that was exhausted.
        capacity: usize,
    },
    /// This session already has its maximum number of queries in
    /// flight; the submission was rejected at admission.
    SessionLimit {
        /// Queries of this session currently queued or executing.
        in_flight: usize,
        /// The per-session concurrency cap.
        cap: usize,
    },
    /// The server is draining: no new queries are admitted (in-flight
    /// queries still complete).
    ShuttingDown,
    /// The engine refused or failed the run (analyzer error, memory
    /// budget, transport failure).
    Engine(EngineError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "parse error: {e}"),
            ServeError::Bind(diags) => {
                write!(f, "query does not bind against the catalog:")?;
                for d in diags {
                    write!(f, " [{d}]")?;
                }
                Ok(())
            }
            ServeError::UnknownQuery(name) => {
                write!(f, "`{name}` is not a registered workload query")
            }
            ServeError::QueueFull { capacity } => {
                write!(f, "run queue full (capacity {capacity}); retry later")
            }
            ServeError::SessionLimit { in_flight, cap } => write!(
                f,
                "session concurrency cap reached ({in_flight} in flight, cap {cap})"
            ),
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ParseError> for ServeError {
    fn from(e: ParseError) -> Self {
        ServeError::Parse(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_full_displays_capacity() {
        let e = ServeError::QueueFull { capacity: 8 };
        assert!(format!("{e}").contains("capacity 8"));
    }

    #[test]
    fn session_limit_displays_both_numbers() {
        let e = ServeError::SessionLimit {
            in_flight: 4,
            cap: 4,
        };
        let s = format!("{e}");
        assert!(s.contains("4 in flight") && s.contains("cap 4"), "got {s}");
    }
}
