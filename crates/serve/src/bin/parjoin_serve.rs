//! `parjoin-serve` — a local serving demo: load a catalog, answer a
//! mixed Q1–Q8 stream through sessions, print metrics.
//!
//! ```text
//! parjoin-serve [--scale tiny|small] [--queries N] [--rate QPS]
//!               [--config advise|RS_HJ|...|HC_TJ] [--queue N]
//!               [--executors N] [--workers N] [--seed N]
//! ```
//!
//! Runs an open-loop arrival schedule: at `--rate` queries/second the
//! submitter never waits for results before sending the next query, so
//! overload surfaces as typed queue-full rejections instead of
//! backpressure (`--rate 0` = submit as fast as possible). Exits
//! non-zero on bad arguments or if nothing completed.

use parjoin_core::queries;
use parjoin_datagen::workloads::Scale;
use parjoin_obs::json;
use parjoin_serve::{ConfigChoice, ServeError, Server, ServerConfig, SessionConfig, TrafficReport};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    scale: Scale,
    scale_name: String,
    queries: usize,
    rate: f64,
    choice: ConfigChoice,
    queue: usize,
    executors: Option<usize>,
    workers: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::tiny(),
        scale_name: "tiny".to_string(),
        queries: 200,
        rate: 0.0,
        choice: ConfigChoice::Advised,
        queue: 16,
        executors: None,
        workers: 4,
        seed: 11,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--scale" => {
                args.scale = match value.as_str() {
                    "tiny" => Scale::tiny(),
                    "small" => Scale::small(),
                    other => return Err(format!("unknown scale `{other}` (tiny|small)")),
                };
                args.scale_name = value.clone();
            }
            "--queries" => {
                args.queries = value.parse().map_err(|e| format!("--queries: {e}"))?;
            }
            "--rate" => args.rate = value.parse().map_err(|e| format!("--rate: {e}"))?,
            "--config" => {
                args.choice = ConfigChoice::parse(value)
                    .ok_or_else(|| format!("unknown config `{value}` (advise|RS_HJ|...|HC_TJ)"))?;
            }
            "--queue" => args.queue = value.parse().map_err(|e| format!("--queue: {e}"))?,
            "--executors" => {
                args.executors = Some(value.parse().map_err(|e| format!("--executors: {e}"))?);
            }
            "--workers" => args.workers = value.parse().map_err(|e| format!("--workers: {e}"))?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("parjoin-serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    let server = Server::start(ServerConfig {
        workers: args.workers,
        seed: args.seed,
        queue_capacity: args.queue,
        session_cap: args.queue + 1,
        executors: args.executors,
    });

    // Load both datasets once; every query shares the resident Arcs.
    let t_load = Instant::now();
    server.load_db(&args.scale.twitter_db(7));
    server.load_db(&args.scale.freebase_db(7));
    println!(
        "catalog v{} loaded in {:?} ({} scale):",
        server.catalog_version(),
        t_load.elapsed(),
        args.scale_name
    );
    for entry in server.list() {
        println!(
            "  {:<14} arity {}  {:>8} rows",
            entry.name, entry.arity, entry.rows
        );
    }

    let session = server.session(SessionConfig {
        choice: args.choice,
        max_in_flight: Some(args.queue + 1),
        ..SessionConfig::default()
    });

    // Open-loop submission: fixed arrival schedule, never waiting on
    // results. Rejections are dropped (and counted), like a load
    // shedder should.
    let interval = if args.rate > 0.0 {
        Duration::from_secs_f64(1.0 / args.rate)
    } else {
        Duration::ZERO
    };
    let t0 = Instant::now();
    let mut tickets = Vec::new();
    let mut rejected_full = 0usize;
    let mut rejected_other = 0usize;
    for i in 0..args.queries {
        if !interval.is_zero() {
            let due = t0 + interval * (i as u32);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let name = queries::NAMES[i % queries::NAMES.len()];
        match session.submit_named(name) {
            Ok(t) => tickets.push((name, t)),
            Err(ServeError::QueueFull { .. }) | Err(ServeError::SessionLimit { .. }) => {
                rejected_full += 1;
            }
            Err(e) => {
                eprintln!("parjoin-serve: {name}: {e}");
                rejected_other += 1;
            }
        }
    }

    let mut latencies = Vec::new();
    let mut failed = 0usize;
    let mut per_query: Vec<(&str, usize, u64)> = Vec::new();
    for (name, ticket) in tickets {
        match ticket.wait() {
            Ok(outcome) => {
                latencies.push(outcome.latency);
                match per_query.iter_mut().find(|(n, _, _)| *n == name) {
                    Some(row) => {
                        row.1 += 1;
                        row.2 += outcome.result.output_tuples;
                    }
                    None => per_query.push((name, 1, outcome.result.output_tuples)),
                }
            }
            Err(e) => {
                eprintln!("parjoin-serve: {name} failed: {e}");
                failed += 1;
            }
        }
    }
    let span = t0.elapsed();
    server.shutdown();

    println!(
        "\n{} submitted, {} completed, {} rejected at admission, {} failed in {:?}",
        args.queries,
        latencies.len(),
        rejected_full + rejected_other,
        failed,
        span
    );
    for (name, runs, tuples) in &per_query {
        println!(
            "  {:<3} {:>4} run(s)  {:>10} output tuples total",
            name, runs, tuples
        );
    }

    let Some(report) = TrafficReport::from_latencies(&latencies, span) else {
        eprintln!("parjoin-serve: nothing completed");
        return ExitCode::FAILURE;
    };
    let json_text = report.to_json(&server.metrics());
    if json::parse(&json_text).is_err() {
        eprintln!("parjoin-serve: internal error: report is not valid JSON");
        return ExitCode::FAILURE;
    }
    println!("\nlatency report:\n{json_text}");
    ExitCode::SUCCESS
}
