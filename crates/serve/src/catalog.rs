//! The resident relation catalog.
//!
//! A serving process loads its relations **once** and shares them across
//! every query: the catalog stores `Arc<Relation>` handles and hands
//! each query a [`Database`] *snapshot* whose entries alias the resident
//! data (cloning a `Database` is a handful of `Arc` bumps since the
//! common crate stores relations behind `Arc`). A query therefore runs
//! against an immutable view — a concurrent `load` or `drop` builds the
//! *next* version and never disturbs runs already in flight.
//!
//! Every mutation bumps a version counter. The version is woven into
//! the SortCache provenance stamp (`catalog@v3/Q1`) the session layer
//! puts on sorted views, so a cache entry is always traceable to the
//! catalog epoch that produced it.

use parjoin_common::{Database, Relation};
use std::sync::{Arc, Mutex, PoisonError};

/// A consistent view of the catalog at one version: the snapshot
/// `Database` (entries alias the resident relations) and the version
/// that produced it.
#[derive(Clone)]
pub struct CatalogSnapshot {
    /// The relations as of this version; safe to read for as long as
    /// the query needs, regardless of later catalog mutations.
    pub db: Arc<Database>,
    /// The catalog version this snapshot was taken at.
    pub version: u64,
}

/// One relation's catalog listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Relation name.
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// Number of rows.
    pub rows: usize,
}

struct Inner {
    db: Arc<Database>,
    version: u64,
}

/// The resident catalog: named relations loaded once, shared as
/// `Arc<Relation>` across queries, with load/drop/list operations.
pub struct Catalog {
    inner: Mutex<Inner>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog at version 0.
    pub fn new() -> Self {
        Catalog {
            inner: Mutex::new(Inner {
                db: Arc::new(Database::new()),
                version: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Loads (or replaces) one relation, returning the new catalog
    /// version.
    pub fn load(&self, name: impl Into<String>, rel: Relation) -> u64 {
        self.load_shared(name, Arc::new(rel))
    }

    /// Loads (or replaces) one relation already behind an `Arc`
    /// (sharing it with the caller), returning the new catalog version.
    pub fn load_shared(&self, name: impl Into<String>, rel: Arc<Relation>) -> u64 {
        let mut inner = self.lock();
        let mut next = (*inner.db).clone();
        next.insert_shared(name, rel);
        inner.db = Arc::new(next);
        inner.version += 1;
        inner.version
    }

    /// Loads every relation of `db` (replacing same-named entries),
    /// returning the new catalog version. One version bump for the
    /// whole batch — a multi-relation dataset loads atomically.
    pub fn load_db(&self, db: &Database) -> u64 {
        let mut inner = self.lock();
        let mut next = (*inner.db).clone();
        for (name, _) in db.iter() {
            if let Some(shared) = db.get_shared(name) {
                next.insert_shared(name, shared);
            }
        }
        inner.db = Arc::new(next);
        inner.version += 1;
        inner.version
    }

    /// Drops a relation. Returns the new version if the relation was
    /// present, `None` (no version bump) if it was not.
    pub fn drop_relation(&self, name: &str) -> Option<u64> {
        let mut inner = self.lock();
        inner.db.get(name)?;
        let mut next = (*inner.db).clone();
        next.remove(name);
        inner.db = Arc::new(next);
        inner.version += 1;
        Some(inner.version)
    }

    /// Lists the resident relations (name order) with arity and row
    /// counts.
    pub fn list(&self) -> Vec<CatalogEntry> {
        let inner = self.lock();
        inner
            .db
            .iter()
            .map(|(name, rel)| CatalogEntry {
                name: name.to_string(),
                arity: rel.arity(),
                rows: rel.len(),
            })
            .collect()
    }

    /// The current version (0 = nothing ever loaded).
    pub fn version(&self) -> u64 {
        self.lock().version
    }

    /// Takes a consistent snapshot: the current database view and its
    /// version. Cheap (`Arc` clone); the snapshot stays valid however
    /// the catalog changes afterwards.
    pub fn snapshot(&self) -> CatalogSnapshot {
        let inner = self.lock();
        CatalogSnapshot {
            db: Arc::clone(&inner.db),
            version: inner.version,
        }
    }

    /// The provenance stamp for SortCache entries created by queries
    /// running against `snapshot`: `catalog@v{version}/{query_name}`.
    pub fn provenance(snapshot: &CatalogSnapshot, query_name: &str) -> String {
        format!("catalog@v{}/{}", snapshot.version, query_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: usize) -> Relation {
        Relation::from_rows(
            2,
            (0..rows as u64)
                .map(|i| [i, i + 1])
                .collect::<Vec<_>>()
                .iter(),
        )
    }

    #[test]
    fn load_list_drop_roundtrip() {
        let cat = Catalog::new();
        assert_eq!(cat.version(), 0);
        assert_eq!(cat.load("R", rel(3)), 1);
        assert_eq!(cat.load("S", rel(5)), 2);
        let listing = cat.list();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].name, "R");
        assert_eq!(listing[0].rows, 3);
        assert_eq!(cat.drop_relation("R"), Some(3));
        assert_eq!(cat.drop_relation("R"), None, "double drop: no bump");
        assert_eq!(cat.version(), 3);
        assert_eq!(cat.list().len(), 1);
    }

    #[test]
    fn snapshots_are_immutable_views() {
        let cat = Catalog::new();
        cat.load("R", rel(3));
        let snap = cat.snapshot();
        cat.drop_relation("R");
        assert!(snap.db.get("R").is_some(), "snapshot survives the drop");
        assert!(cat.snapshot().db.get("R").is_none());
    }

    #[test]
    fn snapshot_aliases_resident_relation() {
        let shared = Arc::new(rel(4));
        let cat = Catalog::new();
        cat.load_shared("R", Arc::clone(&shared));
        let a = cat.snapshot().db.get_shared("R").expect("present");
        let b = cat.snapshot().db.get_shared("R").expect("present");
        assert!(Arc::ptr_eq(&a, &shared) && Arc::ptr_eq(&b, &shared));
    }

    #[test]
    fn load_db_is_one_version_bump() {
        let mut db = Database::new();
        db.insert("A", rel(1));
        db.insert("B", rel(2));
        let cat = Catalog::new();
        assert_eq!(cat.load_db(&db), 1);
        assert_eq!(cat.list().len(), 2);
        let shared = db.get_shared("A").expect("present");
        let resident = cat.snapshot().db.get_shared("A").expect("present");
        assert!(
            Arc::ptr_eq(&shared, &resident),
            "load_db shares, not copies"
        );
    }

    #[test]
    fn provenance_stamp_carries_version_and_name() {
        let cat = Catalog::new();
        cat.load("R", rel(1));
        let snap = cat.snapshot();
        assert_eq!(Catalog::provenance(&snap, "Q1"), "catalog@v1/Q1");
    }
}
