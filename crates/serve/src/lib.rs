#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parjoin-serve
//!
//! The serving front end: what turns the batch engine into a long-lived
//! process answering sustained query traffic (ROADMAP north star). Three
//! pieces, built exactly for cross-query amortization:
//!
//! * **Resident catalog** ([`catalog::Catalog`]) — named relations
//!   loaded once and shared as `Arc<Relation>` across every query.
//!   Queries run against immutable snapshots; loads/drops build the
//!   next version without disturbing runs in flight. The catalog
//!   version is stamped into SortCache provenance
//!   (`catalog@v3/Triangle`), keeping cached sorted views traceable to
//!   the epoch that produced them.
//! * **Sessions** ([`session::Session`]) — parse → bind-against-catalog
//!   → analyze → advise → execute, reusing `parjoin-query`'s Datalog
//!   parser, the `Q110`/`Q111` catalog-bind diagnostics, the engine's
//!   cost-based advisor, and `run_config` itself. Results return with
//!   the analyzer diagnostics and per-phase metrics already carried on
//!   [`parjoin_engine::RunResult`].
//! * **Scheduler** ([`scheduler`]) — a bounded run queue over a fixed
//!   executor pool sized from [`parjoin_common::threads`]. Admission
//!   control rejects with *typed* errors ([`ServeError::QueueFull`],
//!   [`ServeError::SessionLimit`]) instead of blocking or buffering;
//!   shutdown drains every admitted query before the pool exits.
//!
//! ```no_run
//! use parjoin_serve::{Server, ServerConfig, SessionConfig};
//!
//! let server = Server::start(ServerConfig::default());
//! server.load("Twitter", parjoin_datagen::graph::twitter_graph(300, 3, 7));
//! let session = server.session(SessionConfig::default());
//! let ticket = session
//!     .submit("Triangle(x,y,z) :- Twitter(x,y), Twitter(y,z), Twitter(z,x).")
//!     .expect("admitted");
//! let outcome = ticket.wait().expect("completed");
//! println!("{}", outcome.result.report());
//! server.shutdown();
//! ```

pub mod catalog;
pub mod error;
pub mod report;
pub mod scheduler;
mod server_core;
pub mod session;

pub use catalog::{Catalog, CatalogEntry, CatalogSnapshot};
pub use error::ServeError;
pub use report::{percentile_ms, TrafficReport};
pub use session::{batch_run, ConfigChoice, QueryOutcome, Session, SessionConfig, Ticket};

use parjoin_common::{threads, Database, Relation};
use scheduler::Scheduler;
use server_core::ServerCore;
use std::sync::Arc;

/// Canonical names of the `serve.*` registry counters a [`Server`]
/// maintains (returned by [`Server::metrics`]).
pub struct ServeMetrics {
    /// Queries admitted to the run queue.
    pub accepted: &'static str,
    /// Queries that completed successfully.
    pub completed: &'static str,
    /// Queries that reached the engine and failed there.
    pub failed: &'static str,
    /// Submissions rejected because the run queue was full.
    pub rejected_queue_full: &'static str,
    /// Submissions rejected by the per-session concurrency cap.
    pub rejected_session_cap: &'static str,
    /// Submissions rejected by the catalog bind pass (Q110/Q111).
    pub rejected_bind: &'static str,
    /// Submissions whose Datalog text failed to parse.
    pub rejected_parse: &'static str,
    /// Submissions rejected because the server was shutting down.
    pub rejected_shutdown: &'static str,
    /// Catalog load operations (relations or whole databases).
    pub catalog_loads: &'static str,
    /// Catalog drop operations that removed a relation.
    pub catalog_drops: &'static str,
    /// Sum of submit→completion latencies, microseconds (divide by
    /// `completed` for the mean; percentiles live client-side, see
    /// [`TrafficReport`]).
    pub latency_micros: &'static str,
    /// SortCache hits aggregated over every completed query.
    pub sortcache_hits: &'static str,
    /// SortCache misses aggregated over every completed query.
    pub sortcache_misses: &'static str,
    /// Certified (route-proved) SortCache hits aggregated over every
    /// completed query — the certified-transfer reuse rate under
    /// sustained traffic.
    pub sortcache_certified: &'static str,
    /// TrieCache hits aggregated over every completed query (columnar
    /// layout only; zero on row-layout streams).
    pub triecache_hits: &'static str,
    /// TrieCache misses aggregated over every completed query.
    pub triecache_misses: &'static str,
    /// Certified (route-proved) TrieCache hits aggregated over every
    /// completed query.
    pub triecache_certified: &'static str,
}

/// The counter names (`serve.*` namespace).
pub const SERVE_METRICS: ServeMetrics = ServeMetrics {
    accepted: "serve.queries.accepted",
    completed: "serve.queries.completed",
    failed: "serve.queries.failed",
    rejected_queue_full: "serve.rejected.queue_full",
    rejected_session_cap: "serve.rejected.session_cap",
    rejected_bind: "serve.rejected.bind",
    rejected_parse: "serve.rejected.parse",
    rejected_shutdown: "serve.rejected.shutdown",
    catalog_loads: "serve.catalog.loads",
    catalog_drops: "serve.catalog.drops",
    latency_micros: "serve.latency.micros",
    sortcache_hits: "serve.sortcache.hits",
    sortcache_misses: "serve.sortcache.misses",
    sortcache_certified: "serve.sortcache.certified_hits",
    triecache_hits: "serve.triecache.hits",
    triecache_misses: "serve.triecache.misses",
    triecache_certified: "serve.triecache.certified_hits",
};

/// Server-wide knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulated cluster workers per query (the batch harness default).
    pub workers: usize,
    /// Cluster seed; fixed so repeated queries are byte-reproducible.
    pub seed: u64,
    /// Run-queue slots — the admission cap. Submissions beyond
    /// `queue_capacity` queued + `executors` running are rejected with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Default per-session concurrency cap (a [`SessionConfig`] may
    /// override per session).
    pub session_cap: usize,
    /// Executor pool width; `None` derives it from the host: one
    /// query's phase pool already spans `min(host_cores, workers)` OS
    /// threads, so concurrent queries beyond
    /// [`threads::per_worker_threads`]`(workers, host)` would
    /// oversubscribe the machine.
    pub executors: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            seed: 11,
            queue_capacity: 16,
            session_cap: 4,
            executors: None,
        }
    }
}

impl ServerConfig {
    /// The executor pool width this config resolves to on this host.
    pub fn effective_executors(&self) -> usize {
        self.executors
            .unwrap_or_else(|| {
                threads::per_worker_threads(self.workers, threads::host_parallelism())
            })
            .max(1)
    }
}

/// A running server: resident catalog + session factory + scheduler.
pub struct Server {
    core: Arc<ServerCore>,
}

impl Server {
    /// Starts the executor pool and returns a server with an empty
    /// catalog.
    pub fn start(cfg: ServerConfig) -> Server {
        let sched = Scheduler::new(cfg.queue_capacity, cfg.effective_executors());
        Server {
            core: Arc::new(ServerCore::new(cfg, sched)),
        }
    }

    /// Loads (or replaces) one relation; returns the new catalog
    /// version.
    pub fn load(&self, name: impl Into<String>, rel: Relation) -> u64 {
        self.core.registry.add(SERVE_METRICS.catalog_loads, 1);
        self.core.catalog.load(name, rel)
    }

    /// Loads (or replaces) one relation already behind an `Arc`.
    pub fn load_shared(&self, name: impl Into<String>, rel: Arc<Relation>) -> u64 {
        self.core.registry.add(SERVE_METRICS.catalog_loads, 1);
        self.core.catalog.load_shared(name, rel)
    }

    /// Loads every relation of `db` in one catalog version bump.
    pub fn load_db(&self, db: &Database) -> u64 {
        self.core.registry.add(SERVE_METRICS.catalog_loads, 1);
        self.core.catalog.load_db(db)
    }

    /// Drops a relation; `Some(version)` if it was resident.
    pub fn drop_relation(&self, name: &str) -> Option<u64> {
        let dropped = self.core.catalog.drop_relation(name);
        if dropped.is_some() {
            self.core.registry.add(SERVE_METRICS.catalog_drops, 1);
        }
        dropped
    }

    /// Lists the resident relations.
    pub fn list(&self) -> Vec<CatalogEntry> {
        self.core.catalog.list()
    }

    /// The catalog version (0 = nothing ever loaded).
    pub fn catalog_version(&self) -> u64 {
        self.core.catalog.version()
    }

    /// A consistent catalog snapshot (what a query submitted right now
    /// would run against) — the batch baseline the acceptance tests
    /// compare served outputs to runs on exactly this.
    pub fn snapshot(&self) -> CatalogSnapshot {
        self.core.catalog.snapshot()
    }

    /// Opens a session.
    pub fn session(&self, cfg: SessionConfig) -> Session {
        let cap = cfg
            .max_in_flight
            .unwrap_or(self.core.cfg.session_cap)
            .max(1);
        Session {
            core: Arc::clone(&self.core),
            id: self.core.next_session_id(),
            cfg,
            cap,
        }
    }

    /// The per-query cluster every session run uses (for building batch
    /// baselines).
    pub fn cluster(&self) -> parjoin_engine::Cluster {
        self.core.cluster()
    }

    /// The configured run-queue capacity (the admission cap).
    pub fn queue_capacity(&self) -> usize {
        self.core.sched.queue_capacity()
    }

    /// Queries of `session` currently admitted (queued or executing) —
    /// the number the per-session cap compares against.
    pub fn session_in_flight(&self, session: u64) -> usize {
        self.core.in_flight(session)
    }

    /// Name-sorted snapshot of the `serve.*` counters.
    pub fn metrics(&self) -> Vec<(String, u64)> {
        self.core.registry.snapshot()
    }

    /// One counter by name (a [`SERVE_METRICS`] field).
    pub fn metric(&self, name: &str) -> Option<u64> {
        self.core.registry.get(name)
    }

    /// Graceful shutdown: stop admitting, drain every in-flight query
    /// (their tickets still complete), join the executor pool.
    /// Idempotent; later submissions fail with
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        self.core.sched.shutdown();
    }
}
