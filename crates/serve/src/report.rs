//! Latency/throughput reporting for served traffic.
//!
//! The obs registry deliberately holds only monotonic counters, so
//! latency *distributions* are computed here, client-side, from the
//! per-ticket latencies the caller collected. [`TrafficReport::to_json`]
//! renders a strict-JSON document (parseable by `parjoin_obs::json` —
//! the CI smoke asserts exactly that) embedding the percentiles plus
//! any registry counters.

use std::fmt::Write as _;
use std::time::Duration;

/// Latency percentiles and throughput over one traffic run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Completed queries the latencies were measured over.
    pub completed: u64,
    /// Median submit→completion latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Completed queries per wall-clock second.
    pub throughput_qps: f64,
}

/// Nearest-rank percentile over an **unsorted** latency sample;
/// `pct` in `[0, 100]`. Returns 0 for an empty sample.
pub fn percentile_ms(latencies: &[Duration], pct: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<Duration> = latencies.to_vec();
    sorted.sort_unstable();
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.clamp(1, sorted.len()) - 1;
    sorted[idx].as_secs_f64() * 1e3
}

impl TrafficReport {
    /// Summarizes `latencies` measured over `span` of wall-clock time.
    /// `None` when no query completed (no distribution to report).
    pub fn from_latencies(latencies: &[Duration], span: Duration) -> Option<TrafficReport> {
        if latencies.is_empty() {
            return None;
        }
        let sum_ms: f64 = latencies.iter().map(|d| d.as_secs_f64() * 1e3).sum();
        let span_s = span.as_secs_f64();
        Some(TrafficReport {
            completed: latencies.len() as u64,
            p50_ms: percentile_ms(latencies, 50.0),
            p99_ms: percentile_ms(latencies, 99.0),
            mean_ms: sum_ms / latencies.len() as f64,
            throughput_qps: if span_s > 0.0 {
                latencies.len() as f64 / span_s
            } else {
                0.0
            },
        })
    }

    /// Renders the report plus `counters` (e.g. a registry snapshot) as
    /// one strict-JSON object.
    pub fn to_json(&self, counters: &[(String, u64)]) -> String {
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v:.3}")
            } else {
                "0.0".to_string()
            }
        };
        let mut s = String::new();
        // Writing into a String cannot fail; discard the fmt plumbing.
        let _ = write!(
            s,
            "{{\"completed\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"mean_ms\": {}, \"throughput_qps\": {}, \"counters\": {{",
            self.completed,
            num(self.p50_ms),
            num(self.p99_ms),
            num(self.mean_ms),
            num(self.throughput_qps)
        );
        for (i, (name, value)) in counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}\"{}\": {value}", escape(name));
        }
        s.push_str("}}");
        s
    }
}

fn escape(raw: &str) -> String {
    raw.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let lats: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile_ms(&lats, 50.0), 50.0);
        assert_eq!(percentile_ms(&lats, 99.0), 99.0);
        assert_eq!(percentile_ms(&lats, 100.0), 100.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
        assert_eq!(percentile_ms(&[ms(7)], 99.0), 7.0);
    }

    #[test]
    fn report_json_parses_and_carries_counters() {
        let lats: Vec<Duration> = (1..=10).map(ms).collect();
        let report =
            TrafficReport::from_latencies(&lats, Duration::from_secs(1)).expect("non-empty");
        let json = report.to_json(&[("serve.queries.completed".to_string(), 10)]);
        let doc = parjoin_obs::json::parse(&json).expect("strict JSON");
        assert_eq!(
            doc.get("completed").and_then(|v| v.as_f64()),
            Some(10.0),
            "{json}"
        );
        assert_eq!(
            doc.get("p50_ms").and_then(|v| v.as_f64()),
            Some(5.0),
            "{json}"
        );
        let counters = doc.get("counters").expect("counters object");
        assert_eq!(
            counters
                .get("serve.queries.completed")
                .and_then(|v| v.as_f64()),
            Some(10.0)
        );
    }

    #[test]
    fn empty_sample_reports_nothing() {
        assert!(TrafficReport::from_latencies(&[], Duration::from_secs(1)).is_none());
    }
}
