//! Shared server state: catalog + registry + scheduler + the
//! per-session admission ledger.

use crate::catalog::Catalog;
use crate::error::ServeError;
use crate::scheduler::Scheduler;
use crate::{ServerConfig, SERVE_METRICS};
use parjoin_engine::Cluster;
use parjoin_obs::Registry;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// The state every session and every scheduled job shares.
pub(crate) struct ServerCore {
    pub(crate) catalog: Catalog,
    pub(crate) registry: Registry,
    pub(crate) sched: Scheduler,
    pub(crate) cfg: ServerConfig,
    sessions: Mutex<Sessions>,
}

#[derive(Default)]
struct Sessions {
    next_id: u64,
    in_flight: HashMap<u64, usize>,
}

impl ServerCore {
    pub(crate) fn new(cfg: ServerConfig, sched: Scheduler) -> ServerCore {
        ServerCore {
            catalog: Catalog::new(),
            registry: Registry::new(),
            sched,
            cfg,
            sessions: Mutex::new(Sessions::default()),
        }
    }

    fn sessions(&self) -> std::sync::MutexGuard<'_, Sessions> {
        self.sessions.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The per-query simulated cluster (identical for every query of
    /// the server, so repeated queries are byte-reproducible).
    pub(crate) fn cluster(&self) -> Cluster {
        Cluster::new(self.cfg.workers).with_seed(self.cfg.seed)
    }

    pub(crate) fn next_session_id(&self) -> u64 {
        let mut s = self.sessions();
        s.next_id += 1;
        s.next_id
    }

    /// Admission step 1: counts the query against the session's
    /// concurrency cap, or rejects with the typed error.
    pub(crate) fn try_begin(&self, session: u64, cap: usize) -> Result<(), ServeError> {
        let mut s = self.sessions();
        let in_flight = s.in_flight.entry(session).or_insert(0);
        if *in_flight >= cap {
            let current = *in_flight;
            drop(s);
            self.registry.add(SERVE_METRICS.rejected_session_cap, 1);
            return Err(ServeError::SessionLimit {
                in_flight: current,
                cap,
            });
        }
        *in_flight += 1;
        Ok(())
    }

    /// Releases the admission slot after a run finished, tallying the
    /// completion counters.
    pub(crate) fn finish(&self, session: u64, ok: bool) {
        self.finish_admission_only(session);
        let name = if ok {
            SERVE_METRICS.completed
        } else {
            SERVE_METRICS.failed
        };
        self.registry.add(name, 1);
    }

    /// Releases the admission slot without completion accounting (the
    /// job never entered the queue).
    pub(crate) fn finish_admission_only(&self, session: u64) {
        let mut s = self.sessions();
        if let Some(n) = s.in_flight.get_mut(&session) {
            *n = n.saturating_sub(1);
        }
    }

    /// Queries of `session` currently admitted (queued or executing).
    pub(crate) fn in_flight(&self, session: u64) -> usize {
        *self.sessions().in_flight.get(&session).unwrap_or(&0)
    }
}
