//! The concurrent query scheduler: a bounded run queue drained by a
//! fixed executor pool.
//!
//! Admission control is the bounded `sync_channel`: [`Scheduler::submit`]
//! uses `try_send`, so a full queue rejects *immediately* with the typed
//! [`ServeError::QueueFull`] instead of blocking the session thread or
//! buffering unboundedly — under overload the server sheds work at the
//! door, which is the only place shedding is cheap.
//!
//! Shutdown is graceful by construction: dropping the sender closes the
//! channel, executors drain every job already admitted, then their
//! `recv` errors and they exit; [`Scheduler::shutdown`] joins them all.
//! A query that got a ticket always gets an answer.

use crate::error::ServeError;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A unit of scheduled work (one query execution, fully bound).
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Bounded run queue + executor pool.
pub(crate) struct Scheduler {
    queue_capacity: usize,
    /// `None` once shutdown started: no further admissions.
    tx: Mutex<Option<SyncSender<Job>>>,
    executors: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `executors` executor threads over a run queue of
    /// `queue_capacity` slots (both forced to at least 1; a zero-slot
    /// `sync_channel` would rendezvous and make admission block).
    pub(crate) fn new(queue_capacity: usize, executors: usize) -> Scheduler {
        let queue_capacity = queue_capacity.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let executors = (0..executors.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                // Executor threads exit when the queue sender drops.
                // xtask: allow(spawn): joined in `shutdown()` (also invoked by Drop)
                std::thread::spawn(move || run_executor(&rx))
            })
            .collect();
        Scheduler {
            queue_capacity,
            tx: Mutex::new(Some(tx)),
            executors: Mutex::new(executors),
        }
    }

    /// The configured run-queue capacity.
    pub(crate) fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Admits a job, or rejects it with a typed error: `QueueFull` when
    /// the run queue is at capacity, `ShuttingDown` after shutdown
    /// started.
    pub(crate) fn submit(&self, job: Job) -> Result<(), ServeError> {
        let guard = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(tx) = guard.as_ref() else {
            return Err(ServeError::ShuttingDown);
        };
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(ServeError::QueueFull {
                capacity: self.queue_capacity,
            }),
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Stops admitting, drains every job already in the queue, and joins
    /// the executor pool. Idempotent.
    pub(crate) fn shutdown(&self) {
        // Dropping the sender is what lets executors finish their drain.
        drop(
            self.tx
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take(),
        );
        let handles = std::mem::take(
            &mut *self
                .executors
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        let me = std::thread::current().id();
        for h in handles {
            // Never join the current thread: if the last handle to the
            // server is released *inside* a job, this drop-driven
            // shutdown runs on an executor, and joining itself would
            // deadlock. That executor is already draining to channel
            // close, so skipping the join is safe.
            if h.thread().id() == me {
                continue;
            }
            // An executor only terminates by draining to channel close;
            // a join error would mean a panicked job, and jobs are
            // catch-all closures that report through their ticket.
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_executor(rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the lock only to receive; execute outside it so the other
        // executors keep pulling work while this job runs.
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => break, // sender dropped: drained, shut down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let sched = Scheduler::new(4, 2);
        let hits = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            let hits = Arc::clone(&hits);
            let tx = tx.clone();
            sched
                .submit(Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                    let _ = tx.send(());
                }))
                .expect("capacity available");
        }
        for _ in 0..4 {
            rx.recv_timeout(Duration::from_secs(10)).expect("job ran");
        }
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn overload_rejects_with_queue_full() {
        // One executor wedged on a slow job; the queue (capacity 1)
        // fills with the second job, so the third submission must be
        // rejected with the typed error.
        let sched = Scheduler::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        sched
            .submit(Box::new(move || {
                let _ = started_tx.send(());
                let _ = release_rx.recv();
            }))
            .expect("first job admitted");
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("executor picked up the job");
        sched.submit(Box::new(|| {})).expect("queue slot available");
        let err = sched.submit(Box::new(|| {})).expect_err("queue is full");
        assert!(matches!(err, ServeError::QueueFull { capacity: 1 }));
        drop(release_tx);
        sched.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs_then_rejects() {
        let sched = Scheduler::new(8, 1);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let hits = Arc::clone(&hits);
            sched
                .submit(Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }))
                .expect("admitted");
        }
        sched.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 6, "every admitted job ran");
        let err = sched.submit(Box::new(|| {})).expect_err("draining");
        assert!(matches!(err, ServeError::ShuttingDown));
    }
}
