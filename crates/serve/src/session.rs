//! Sessions: the parse → bind → analyze → advise → execute pipeline.
//!
//! A [`Session`] accepts Datalog text (the same grammar
//! `parjoin_query::parser` gives the batch examples) or a registered
//! workload name, and turns it into a scheduled query:
//!
//! 1. **parse** — on the session thread; malformed text never reaches
//!    the scheduler ([`ServeError::Parse`]).
//! 2. **bind** — against a catalog *snapshot*
//!    ([`parjoin_analyze::bind_against_catalog`]); unknown relations and
//!    arity mismatches are rejected with the `Q110`/`Q111` diagnostics
//!    before any scheduling work ([`ServeError::Bind`]).
//! 3. **admit** — per-session concurrency cap, then the bounded run
//!    queue ([`ServeError::SessionLimit`] / [`ServeError::QueueFull`]).
//! 4. **advise + execute** — on an executor: the advisor picks the
//!    shuffle × join config (unless the session pinned one), and
//!    `run_config` runs it against the snapshot with a catalog-aware
//!    SortCache provenance stamp. The analyzer's diagnostics and the
//!    per-phase metrics ride back on the [`RunResult`] inside the
//!    [`QueryOutcome`].
//!
//! Submissions return a [`Ticket`] immediately; [`Ticket::wait`] blocks
//! for the outcome. Queries of one session (and of different sessions)
//! execute concurrently up to the pool width and their admission caps.

use crate::catalog::Catalog;
use crate::error::ServeError;
use crate::server_core::ServerCore;
use crate::SERVE_METRICS;
use parjoin_engine::{advise, run_config, Cluster, JoinAlg, PlanOptions, RunResult, ShuffleAlg};
use parjoin_query::{parser, ConjunctiveQuery};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a session picks the shuffle × join configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConfigChoice {
    /// Ask the cost-based advisor per query (the serving default).
    #[default]
    Advised,
    /// Pin one configuration for every query of the session.
    Fixed(ShuffleAlg, JoinAlg),
}

impl ConfigChoice {
    /// Parses `"advise"` or a config name (`"RS_HJ"`, `"RS_TJ"`,
    /// `"BR_HJ"`, `"BR_TJ"`, `"HC_HJ"`, `"HC_TJ"`).
    pub fn parse(s: &str) -> Option<ConfigChoice> {
        let fixed = |sh, jn| Some(ConfigChoice::Fixed(sh, jn));
        match s {
            "advise" => Some(ConfigChoice::Advised),
            "RS_HJ" => fixed(ShuffleAlg::Regular, JoinAlg::Hash),
            "RS_TJ" => fixed(ShuffleAlg::Regular, JoinAlg::Tributary),
            "BR_HJ" => fixed(ShuffleAlg::Broadcast, JoinAlg::Hash),
            "BR_TJ" => fixed(ShuffleAlg::Broadcast, JoinAlg::Tributary),
            "HC_HJ" => fixed(ShuffleAlg::HyperCube, JoinAlg::Hash),
            "HC_TJ" => fixed(ShuffleAlg::HyperCube, JoinAlg::Tributary),
            _ => None,
        }
    }
}

/// Per-session knobs. [`Default`] matches the batch test harness:
/// collected, non-distinct output, certify mode on (certified SortCache
/// hits across repeated queries are the point of serving).
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Config selection (advisor by default).
    pub choice: ConfigChoice,
    /// Materialize the output at the coordinator (on by default — a
    /// served query wants its rows back).
    pub collect_output: bool,
    /// Deduplicate the collected output (set semantics).
    pub distinct_output: bool,
    /// Run in certify mode: plans carry the R420 parallel-correctness
    /// proof and SortCache hits across queries are route-certified.
    pub certify: bool,
    /// Per-session in-flight cap override; `None` uses the server's
    /// `session_cap`.
    pub max_in_flight: Option<usize>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            choice: ConfigChoice::Advised,
            collect_output: true,
            distinct_output: false,
            certify: true,
            max_in_flight: None,
        }
    }
}

/// Builds the engine options a session run uses. Exposed (crate-private
/// to the serving layer, public to its tests and benches via
/// [`batch_run`]) so served executions and their batch baselines can
/// never drift apart.
fn plan_options(cfg: &SessionConfig, provenance: Option<String>) -> PlanOptions {
    PlanOptions {
        collect_output: cfg.collect_output,
        distinct_output: cfg.distinct_output,
        certify: cfg.certify,
        provenance,
        ..PlanOptions::default()
    }
}

/// Resolves the session's config choice for one query.
fn resolve_choice(
    choice: ConfigChoice,
    query: &ConjunctiveQuery,
    db: &parjoin_common::Database,
    cluster: &Cluster,
) -> (ShuffleAlg, JoinAlg) {
    match choice {
        ConfigChoice::Advised => {
            let a = advise(query, db, cluster);
            (a.shuffle, a.join)
        }
        ConfigChoice::Fixed(s, j) => (s, j),
    }
}

/// Runs `query` exactly the way a session with `cfg` would — same
/// advisor decision, same plan options, same cluster — but directly,
/// without the scheduler. This is the batch baseline the acceptance
/// tests byte-compare served outputs against.
pub fn batch_run(
    query: &ConjunctiveQuery,
    db: &parjoin_common::Database,
    cluster: &Cluster,
    cfg: &SessionConfig,
) -> Result<RunResult, parjoin_engine::EngineError> {
    let (shuffle, join) = resolve_choice(cfg.choice, query, db, cluster);
    run_config(query, db, cluster, shuffle, join, &plan_options(cfg, None))
}

/// Everything a completed query hands back.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The query's own name (e.g. `Triangle` for Q1).
    pub query: String,
    /// Catalog version the query ran against.
    pub catalog_version: u64,
    /// The configuration that ran (e.g. `"HC_TJ"`), advisor-chosen or
    /// pinned.
    pub config: String,
    /// The full engine result: output, analyzer diagnostics, per-phase
    /// metrics, SortCache counters.
    pub result: RunResult,
    /// Time spent between admission and execution start.
    pub queued: Duration,
    /// Total submit → completion latency.
    pub latency: Duration,
}

/// A pending query: redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Result<QueryOutcome, ServeError>>,
}

impl Ticket {
    /// Blocks until the query completes (or failed in the engine).
    pub fn wait(self) -> Result<QueryOutcome, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }
}

/// One client session on a [`crate::Server`].
pub struct Session {
    pub(crate) core: Arc<ServerCore>,
    pub(crate) id: u64,
    pub(crate) cfg: SessionConfig,
    pub(crate) cap: usize,
}

impl Session {
    /// The server-assigned session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Submits Datalog query text (e.g.
    /// `Triangle(x,y,z) :- Twitter(x,y), Twitter(y,z), Twitter(z,x).`).
    pub fn submit(&self, text: &str) -> Result<Ticket, ServeError> {
        let query = parser::parse(text).map_err(|e| {
            self.core.registry.add(SERVE_METRICS.rejected_parse, 1);
            ServeError::Parse(e)
        })?;
        self.submit_query(query)
    }

    /// Submits a registered workload query by paper name (`"Q1"` …
    /// `"Q8"`, from [`parjoin_core::queries`]).
    pub fn submit_named(&self, name: &str) -> Result<Ticket, ServeError> {
        let query = parjoin_core::queries::build(name)
            .ok_or_else(|| ServeError::UnknownQuery(name.to_string()))?;
        self.submit_query(query)
    }

    /// Submits an already-built [`ConjunctiveQuery`]: binds it against
    /// the current catalog snapshot, admits it, and schedules execution.
    pub fn submit_query(&self, query: ConjunctiveQuery) -> Result<Ticket, ServeError> {
        let core = &self.core;
        let snapshot = core.catalog.snapshot();

        // Pre-flight bind: reject unknown relations / arity mismatches
        // before any scheduling work.
        let diags = parjoin_analyze::bind_against_catalog(&query, &snapshot.db);
        if !diags.is_empty() {
            core.registry.add(SERVE_METRICS.rejected_bind, 1);
            return Err(ServeError::Bind(diags));
        }

        // Admission, step 1: the per-session concurrency cap.
        core.try_begin(self.id, self.cap)?;

        let submitted = Instant::now();
        let (tx, rx) = mpsc::channel();
        let job_core = Arc::clone(core);
        let session_id = self.id;
        let cfg = self.cfg.clone();
        let job = Box::new(move || {
            let started = Instant::now();
            let outcome = execute(&job_core, &cfg, query, &snapshot, submitted, started);
            job_core.finish(session_id, outcome.is_ok());
            // A dropped ticket just means the client stopped listening.
            let _ = tx.send(outcome);
        });

        // Admission, step 2: the bounded run queue.
        if let Err(e) = core.sched.submit(job) {
            core.finish_admission_only(session_id);
            match &e {
                ServeError::QueueFull { .. } => {
                    core.registry.add(SERVE_METRICS.rejected_queue_full, 1);
                }
                _ => core.registry.add(SERVE_METRICS.rejected_shutdown, 1),
            }
            return Err(e);
        }
        core.registry.add(SERVE_METRICS.accepted, 1);
        Ok(Ticket { rx })
    }
}

fn execute(
    core: &ServerCore,
    cfg: &SessionConfig,
    query: ConjunctiveQuery,
    snapshot: &crate::catalog::CatalogSnapshot,
    submitted: Instant,
    started: Instant,
) -> Result<QueryOutcome, ServeError> {
    let cluster = core.cluster();
    let (shuffle, join) = resolve_choice(cfg.choice, &query, &snapshot.db, &cluster);
    let provenance = Catalog::provenance(snapshot, &query.name);
    let opts = plan_options(cfg, Some(provenance));
    let result = run_config(&query, &snapshot.db, &cluster, shuffle, join, &opts)
        .map_err(ServeError::Engine)?;
    let reg = &core.registry;
    reg.add(SERVE_METRICS.sortcache_hits, result.sort_cache_hits);
    reg.add(SERVE_METRICS.sortcache_misses, result.sort_cache_misses);
    reg.add(
        SERVE_METRICS.sortcache_certified,
        result.sort_cache_certified_hits,
    );
    reg.add(SERVE_METRICS.triecache_hits, result.trie_cache_hits);
    reg.add(SERVE_METRICS.triecache_misses, result.trie_cache_misses);
    reg.add(
        SERVE_METRICS.triecache_certified,
        result.trie_cache_certified_hits,
    );
    let latency = submitted.elapsed();
    reg.add(
        SERVE_METRICS.latency_micros,
        u64::try_from(latency.as_micros()).unwrap_or(u64::MAX),
    );
    Ok(QueryOutcome {
        query: query.name,
        catalog_version: snapshot.version,
        config: result.config.clone(),
        result,
        queued: started.duration_since(submitted),
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_choice_parses_all_names() {
        assert_eq!(ConfigChoice::parse("advise"), Some(ConfigChoice::Advised));
        for name in ["RS_HJ", "RS_TJ", "BR_HJ", "BR_TJ", "HC_HJ", "HC_TJ"] {
            assert!(
                matches!(ConfigChoice::parse(name), Some(ConfigChoice::Fixed(_, _))),
                "{name}"
            );
        }
        assert_eq!(ConfigChoice::parse("XX_YY"), None);
    }
}
