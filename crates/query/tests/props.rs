//! Property tests: random queries round-trip through Display → parse,
//! and the hypergraph analysis is stable under atom permutation.

use parjoin_query::hypergraph::is_acyclic;
use parjoin_query::{parser, CmpOp, ConjunctiveQuery, QueryBuilder};
use proptest::prelude::*;

/// Strategy: a random connected-ish conjunctive query over ≤6 variables
/// and ≤6 binary atoms, with optional filters.
fn arb_query() -> impl Strategy<Value = ConjunctiveQuery> {
    (
        2usize..=6,                                                         // variables
        proptest::collection::vec((0usize..6, 0usize..6), 1..=6),           // atom var pairs
        proptest::collection::vec((0usize..6, 0usize..4, 0u64..100), 0..3), // filters
    )
        .prop_map(|(nvars, atoms, filters)| {
            let mut b = QueryBuilder::new("Q");
            let vars: Vec<_> = (0..nvars).map(|i| b.var(&format!("v{i}"))).collect();
            let mut used = vec![false; nvars];
            for (i, (a, c)) in atoms.iter().enumerate() {
                let (a, c) = (a % nvars, c % nvars);
                used[a] = true;
                used[c] = true;
                b.atom(&format!("R{i}"), [vars[a], vars[c]]);
            }
            // Ensure every declared variable is used: add a closing atom.
            let unused: Vec<_> = (0..nvars).filter(|&i| !used[i]).map(|i| vars[i]).collect();
            if !unused.is_empty() {
                b.atom("Fix", unused);
            }
            let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
            for (l, op, k) in filters {
                b.filter_vc(vars[l % nvars], ops[op % ops.len()], k);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_roundtrip(q in arb_query()) {
        let text = format!("{q}");
        let parsed = parser::parse(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        // Round-trip fixpoint: printing the parse gives the same text.
        prop_assert_eq!(format!("{parsed}"), text);
        prop_assert_eq!(parsed.atoms.len(), q.atoms.len());
        prop_assert_eq!(parsed.filters.len(), q.filters.len());
        prop_assert_eq!(parsed.num_vars(), q.num_vars());
    }

    #[test]
    fn cyclicity_invariant_under_atom_permutation(q in arb_query()) {
        let base = is_acyclic(&q);
        let mut rev = q.clone();
        rev.atoms.reverse();
        prop_assert_eq!(is_acyclic(&rev), base);
    }

    #[test]
    fn join_vars_subset_of_all_vars(q in arb_query()) {
        let all = q.all_vars();
        for v in q.join_vars() {
            prop_assert!(all.contains(&v));
        }
    }
}
