#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parjoin-query
//!
//! The query model shared by the optimizer and the execution engine:
//!
//! * [`ConjunctiveQuery`] — full conjunctive queries in the paper's Datalog
//!   notation `q(x₁,…) :- S₁(x̄₁), …, Sₗ(x̄ₗ)` (Eq. 1, §2.1), extended with
//!   comparison filters (`f1 > f2` in Q4, `1990 ≤ y < 2000` in Q7).
//! * [`hypergraph`] — the query hypergraph: cyclicity via GYO reduction,
//!   join-tree construction for the semijoin (GYM) plans of §3.6.
//! * [`parser`] — a small Datalog text front end so the examples read like
//!   the paper's listings.
//! * [`resolve`] — selection pushdown: binds constants/filters against a
//!   [`Database`](parjoin_common::Database) and produces per-atom,
//!   variables-only relations ready for shuffling and joining.

pub mod hypergraph;
pub mod parser;
pub mod query;
pub mod resolve;

pub use query::{Atom, CmpOp, ConjunctiveQuery, Filter, Operand, QueryBuilder, Term, VarId};
pub use resolve::{resolve_atoms, ResolvedAtom};
