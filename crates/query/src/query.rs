//! Conjunctive queries with comparison filters.
//!
//! Queries follow the paper's Datalog form (Eq. 1):
//!
//! ```text
//! q(x₁, …, xₖ) :- S₁(x̄₁), …, Sₗ(x̄ₗ) [, filters]
//! ```
//!
//! Atom arguments may be variables or constants; constants model the
//! pushed-down selections of Q3/Q7 (e.g. `ObjectName(a1, "Joe Pesci")`,
//! which the paper treats as "containing very few tuples" after pushdown).

use parjoin_common::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A query variable, an index into [`ConjunctiveQuery::var_names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable's index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An atom argument: a variable or a constant (pushed-down selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// A query variable.
    Var(VarId),
    /// A constant value the attribute must equal.
    Const(Value),
}

/// One atom `S(t₁, …, tₐ)` in the query body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Base relation name in the catalog.
    pub relation: String,
    /// Argument terms, one per attribute of the base relation.
    pub terms: Vec<Term>,
}

impl Atom {
    /// The distinct variables of this atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// True if the atom mentions `v`.
    pub fn contains_var(&self, v: VarId) -> bool {
        self.terms
            .iter()
            .any(|t| matches!(t, Term::Var(x) if *x == v))
    }
}

/// Comparison operators usable in filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluates `l op r`.
    #[inline]
    pub fn eval(self, l: Value, r: Value) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// Right-hand side of a filter comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Compare against another variable (`f1 > f2`, Q4).
    Var(VarId),
    /// Compare against a constant (`y >= 1990`, Q7).
    Const(Value),
}

/// A comparison filter `left op right` on the query body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Filter {
    /// Left variable.
    pub left: VarId,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Operand,
}

impl Filter {
    /// The variables this filter mentions.
    pub fn vars(&self) -> Vec<VarId> {
        match self.right {
            Operand::Var(v) => vec![self.left, v],
            Operand::Const(_) => vec![self.left],
        }
    }

    /// Evaluates the filter under a (partial) assignment; the caller
    /// guarantees all mentioned variables are bound.
    #[inline]
    pub fn eval(&self, assignment: &[Value]) -> bool {
        let l = assignment[self.left.index()];
        let r = match self.right {
            Operand::Var(v) => assignment[v.index()],
            Operand::Const(c) => c,
        };
        self.op.eval(l, r)
    }
}

/// A full conjunctive query with optional head projection and filters.
#[derive(Debug, Clone)]
pub struct ConjunctiveQuery {
    /// Query name (the head predicate).
    pub name: String,
    /// Head variables (projection). Empty head means "all variables".
    pub head: Vec<VarId>,
    /// Body atoms.
    pub atoms: Vec<Atom>,
    /// Comparison filters.
    pub filters: Vec<Filter>,
    /// Variable names, indexed by [`VarId`].
    pub var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// All variables, `0..num_vars`.
    pub fn all_vars(&self) -> Vec<VarId> {
        (0..self.var_names.len() as u32).map(VarId).collect()
    }

    /// The name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// Variables occurring in at least two atoms — the paper's
    /// "# Join Variables" for hypercube dimensioning purposes.
    pub fn join_vars(&self) -> Vec<VarId> {
        self.all_vars()
            .into_iter()
            .filter(|&v| self.atoms.iter().filter(|a| a.contains_var(v)).count() >= 2)
            .collect()
    }

    /// Indices of atoms containing `v`.
    pub fn atoms_containing(&self, v: VarId) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.contains_var(v))
            .map(|(i, _)| i)
            .collect()
    }

    /// Head variables, defaulting to all variables when the head is empty.
    pub fn output_vars(&self) -> Vec<VarId> {
        if self.head.is_empty() {
            self.all_vars()
        } else {
            self.head.clone()
        }
    }

    /// Checks structural invariants; returns a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.atoms.is_empty() {
            return Err("query has no atoms".into());
        }
        let n = self.var_names.len() as u32;
        let check = |v: VarId| -> Result<(), String> {
            if v.0 >= n {
                Err(format!("variable id {} out of range ({n} vars)", v.0))
            } else {
                Ok(())
            }
        };
        for a in &self.atoms {
            if a.terms.is_empty() {
                return Err(format!("atom {} has no terms", a.relation));
            }
            for t in &a.terms {
                if let Term::Var(v) = t {
                    check(*v)?;
                }
            }
        }
        for h in &self.head {
            check(*h)?;
            if !self.atoms.iter().any(|a| a.contains_var(*h)) {
                return Err(format!(
                    "head variable {} not in any atom",
                    self.var_name(*h)
                ));
            }
        }
        for f in &self.filters {
            for v in f.vars() {
                check(v)?;
                if !self.atoms.iter().any(|a| a.contains_var(v)) {
                    return Err(format!(
                        "filter variable {} not in any atom",
                        self.var_name(v)
                    ));
                }
            }
        }
        // Every variable must be used somewhere.
        for v in self.all_vars() {
            if !self.atoms.iter().any(|a| a.contains_var(v)) {
                return Err(format!("declared variable {} unused", self.var_name(v)));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, h) in self.output_vars().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.var_name(*h))?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", a.relation)?;
            for (j, t) in a.terms.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                match t {
                    Term::Var(v) => write!(f, "{}", self.var_name(*v))?,
                    Term::Const(c) => write!(f, "{c}")?,
                }
            }
            write!(f, ")")?;
        }
        for flt in &self.filters {
            write!(f, ", {} {} ", self.var_name(flt.left), flt.op)?;
            match flt.right {
                Operand::Var(v) => write!(f, "{}", self.var_name(v))?,
                Operand::Const(c) => write!(f, "{c}")?,
            }
        }
        Ok(())
    }
}

/// Fluent construction of [`ConjunctiveQuery`] values.
///
/// ```
/// use parjoin_query::QueryBuilder;
/// let mut b = QueryBuilder::new("Triangle");
/// let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
/// b.atom("R", [x, y]);
/// b.atom("S", [y, z]);
/// b.atom("T", [z, x]);
/// let q = b.build();
/// assert_eq!(q.atoms.len(), 3);
/// assert_eq!(q.join_vars().len(), 3);
/// ```
pub struct QueryBuilder {
    name: String,
    head: Vec<VarId>,
    atoms: Vec<Atom>,
    filters: Vec<Filter>,
    var_names: Vec<String>,
    by_name: BTreeMap<String, VarId>,
}

impl QueryBuilder {
    /// Starts a query with the given head-predicate name.
    pub fn new(name: impl Into<String>) -> Self {
        QueryBuilder {
            name: name.into(),
            head: Vec::new(),
            atoms: Vec::new(),
            filters: Vec::new(),
            var_names: Vec::new(),
            by_name: BTreeMap::new(),
        }
    }

    /// Declares (or looks up) a variable by name.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        self.by_name.insert(name.to_string(), v);
        v
    }

    /// Adds a body atom whose arguments are all variables.
    pub fn atom<I: IntoIterator<Item = VarId>>(&mut self, relation: &str, vars: I) -> &mut Self {
        let terms = vars.into_iter().map(Term::Var).collect();
        self.atoms.push(Atom {
            relation: relation.to_string(),
            terms,
        });
        self
    }

    /// Adds a body atom with arbitrary terms (variables and constants).
    pub fn atom_terms<I: IntoIterator<Item = Term>>(
        &mut self,
        relation: &str,
        terms: I,
    ) -> &mut Self {
        self.atoms.push(Atom {
            relation: relation.to_string(),
            terms: terms.into_iter().collect(),
        });
        self
    }

    /// Sets the head (projection) variables.
    pub fn head<I: IntoIterator<Item = VarId>>(&mut self, vars: I) -> &mut Self {
        self.head = vars.into_iter().collect();
        self
    }

    /// Adds a variable-vs-variable filter.
    pub fn filter_vv(&mut self, left: VarId, op: CmpOp, right: VarId) -> &mut Self {
        self.filters.push(Filter {
            left,
            op,
            right: Operand::Var(right),
        });
        self
    }

    /// Adds a variable-vs-constant filter.
    pub fn filter_vc(&mut self, left: VarId, op: CmpOp, c: Value) -> &mut Self {
        self.filters.push(Filter {
            left,
            op,
            right: Operand::Const(c),
        });
        self
    }

    /// Finishes the query.
    ///
    /// # Panics
    /// Panics if the query fails [`ConjunctiveQuery::validate`] — builder
    /// misuse is a programming error.
    pub fn build(self) -> ConjunctiveQuery {
        let q = ConjunctiveQuery {
            name: self.name,
            head: self.head,
            atoms: self.atoms,
            filters: self.filters,
            var_names: self.var_names,
        };
        if let Err(e) = q.validate() {
            panic!("invalid query `{}`: {e}", q.name); // xtask: allow(panic)
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> ConjunctiveQuery {
        let mut b = QueryBuilder::new("T");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, x]);
        b.build()
    }

    #[test]
    fn builder_dedups_vars() {
        let mut b = QueryBuilder::new("Q");
        let x1 = b.var("x");
        let x2 = b.var("x");
        assert_eq!(x1, x2);
    }

    #[test]
    fn triangle_join_vars() {
        let q = triangle();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.join_vars().len(), 3);
        assert_eq!(q.atoms_containing(VarId(0)), vec![0, 2]);
    }

    #[test]
    fn output_vars_defaults_to_all() {
        let q = triangle();
        assert_eq!(q.output_vars().len(), 3);
    }

    #[test]
    fn head_projection_kept() {
        let mut b = QueryBuilder::new("Q");
        let (x, y) = (b.var("x"), b.var("y"));
        b.atom("R", [x, y]);
        b.head([y]);
        let q = b.build();
        assert_eq!(q.output_vars(), vec![VarId(1)]);
    }

    #[test]
    #[should_panic(expected = "unused")]
    fn unused_var_rejected() {
        let mut b = QueryBuilder::new("Q");
        let x = b.var("x");
        let _unused = b.var("dead");
        b.atom("R", [x]);
        b.build();
    }

    #[test]
    #[should_panic(expected = "head variable")]
    fn head_var_must_occur() {
        let mut b = QueryBuilder::new("Q");
        let x = b.var("x");
        b.atom("R", [x]);
        // Manually corrupt: head var beyond atoms.
        let q = ConjunctiveQuery {
            name: "Q".into(),
            head: vec![VarId(1)],
            atoms: b.build().atoms,
            filters: vec![],
            var_names: vec!["x".into(), "y".into()],
        };
        if let Err(e) = q.validate() {
            panic!("{e}");
        }
    }

    #[test]
    fn filters_eval() {
        let f = Filter {
            left: VarId(0),
            op: CmpOp::Gt,
            right: Operand::Var(VarId(1)),
        };
        assert!(f.eval(&[5, 3]));
        assert!(!f.eval(&[3, 5]));
        let g = Filter {
            left: VarId(0),
            op: CmpOp::Le,
            right: Operand::Const(4),
        };
        assert!(g.eval(&[4, 0]));
        assert!(!g.eval(&[5, 0]));
    }

    #[test]
    fn cmp_ops_all() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Eq.eval(2, 2));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(!CmpOp::Eq.eval(1, 2));
    }

    #[test]
    fn display_roundtrips_shape() {
        let q = triangle();
        let s = format!("{q}");
        assert!(
            s.contains("T(x, y, z) :- R(x, y), S(y, z), T(z, x)"),
            "got {s}"
        );
    }

    #[test]
    fn atom_vars_distinct_in_order() {
        let mut b = QueryBuilder::new("Q");
        let x = b.var("x");
        b.atom("R", [x, x]);
        let q = b.build();
        assert_eq!(q.atoms[0].vars(), vec![x]);
    }
}
