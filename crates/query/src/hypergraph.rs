//! Query hypergraph analysis.
//!
//! The query hypergraph has one vertex per variable and one hyperedge per
//! atom. Two properties matter for the paper:
//!
//! * **Cyclicity** (Table 6's "Cyclic" column): decided by the classic
//!   GYO ear-removal reduction — a query is (α-)acyclic iff repeated ear
//!   removal eliminates every edge.
//! * **Join trees** for acyclic queries: the witness structure produced by
//!   GYO. §3.6's distributed semijoin reduction (Yannakakis / GYM \[4\])
//!   runs its bottom-up and top-down passes along this tree.

use crate::{ConjunctiveQuery, VarId};
use std::collections::BTreeSet;

/// A join tree over the atoms of an acyclic query.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// `parent[i]` is the parent atom of atom `i`; the root has `None`.
    pub parent: Vec<Option<usize>>,
    /// Atoms in a bottom-up order (every atom precedes its parent).
    pub bottom_up: Vec<usize>,
}

impl JoinTree {
    /// The root atom index.
    pub fn root(&self) -> usize {
        // `gyo` only builds trees for queries with at least one atom
        // and pushes the root last. xtask: allow(expect)
        *self.bottom_up.last().expect("non-empty tree")
    }

    /// Atoms in top-down order (root first).
    pub fn top_down(&self) -> Vec<usize> {
        let mut v = self.bottom_up.clone();
        v.reverse();
        v
    }

    /// Children of atom `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.parent.len())
            .filter(|&c| self.parent[c] == Some(i))
            .collect()
    }
}

fn edge_sets(q: &ConjunctiveQuery) -> Vec<BTreeSet<VarId>> {
    q.atoms
        .iter()
        .map(|a| a.vars().into_iter().collect())
        .collect()
}

/// Runs the GYO reduction; returns a join tree if the query is acyclic.
///
/// Ear rule: an alive edge `e` is an *ear* witnessed by another alive edge
/// `f` when every vertex of `e` that also occurs in some other alive edge
/// is contained in `f`. Removing `e` makes `f` its parent.
pub fn gyo_join_tree(q: &ConjunctiveQuery) -> Option<JoinTree> {
    let edges = edge_sets(q);
    let n = edges.len();
    let mut alive: Vec<bool> = vec![true; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut bottom_up: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;

    while remaining > 1 {
        let mut removed_any = false;
        'outer: for e in 0..n {
            if !alive[e] {
                continue;
            }
            // Vertices of e shared with any *other* alive edge.
            let shared: BTreeSet<VarId> = edges[e]
                .iter()
                .copied()
                .filter(|v| (0..n).any(|f| f != e && alive[f] && edges[f].contains(v)))
                .collect();
            for f in 0..n {
                if f == e || !alive[f] {
                    continue;
                }
                if shared.is_subset(&edges[f]) {
                    alive[e] = false;
                    parent[e] = Some(f);
                    bottom_up.push(e);
                    remaining -= 1;
                    removed_any = true;
                    continue 'outer;
                }
            }
        }
        if !removed_any {
            return None; // stuck: cyclic
        }
    }
    // The sole survivor is the root: the loop above only exits with
    // `removed_any` while more than one edge is alive. xtask: allow(expect)
    let root = (0..n).find(|&i| alive[i]).expect("one edge remains");
    bottom_up.push(root);
    Some(JoinTree { parent, bottom_up })
}

/// True iff the query hypergraph is α-acyclic.
pub fn is_acyclic(q: &ConjunctiveQuery) -> bool {
    gyo_join_tree(q).is_some()
}

/// The variables two atoms share (used for semijoin keys and join trees).
pub fn shared_vars(q: &ConjunctiveQuery, a: usize, b: usize) -> Vec<VarId> {
    let sb: BTreeSet<VarId> = q.atoms[b].vars().into_iter().collect();
    q.atoms[a]
        .vars()
        .into_iter()
        .filter(|v| sb.contains(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryBuilder;

    fn triangle() -> ConjunctiveQuery {
        let mut b = QueryBuilder::new("T");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, x]);
        b.build()
    }

    fn path3() -> ConjunctiveQuery {
        let mut b = QueryBuilder::new("P");
        let (x, y, z, w) = (b.var("x"), b.var("y"), b.var("z"), b.var("w"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, w]);
        b.build()
    }

    #[test]
    fn triangle_is_cyclic() {
        assert!(!is_acyclic(&triangle()));
        assert!(gyo_join_tree(&triangle()).is_none());
    }

    #[test]
    fn path_is_acyclic_with_valid_tree() {
        let q = path3();
        let t = gyo_join_tree(&q).expect("acyclic");
        // Every atom except root has a parent; bottom_up covers all atoms.
        assert_eq!(t.bottom_up.len(), 3);
        let root = t.root();
        assert!(t.parent[root].is_none());
        for i in 0..3 {
            if i != root {
                assert!(t.parent[i].is_some());
            }
        }
        // Bottom-up order: child before parent.
        for (pos, &a) in t.bottom_up.iter().enumerate() {
            if let Some(p) = t.parent[a] {
                let ppos = t.bottom_up.iter().position(|&x| x == p).unwrap();
                assert!(ppos > pos, "parent {p} must come after child {a}");
            }
        }
    }

    #[test]
    fn star_is_acyclic() {
        // Q7 shape: a star of three relations around h plus a leaf.
        let mut b = QueryBuilder::new("Q7");
        let (aw, h, a, y) = (b.var("aw"), b.var("h"), b.var("a"), b.var("y"));
        b.atom("ObjectName", [aw])
            .atom("HonorAward", [h, aw])
            .atom("HonorActor", [h, a])
            .atom("HonorYear", [h, y]);
        let q = b.build();
        assert!(is_acyclic(&q));
    }

    #[test]
    fn four_cycle_is_cyclic() {
        let mut b = QueryBuilder::new("C4");
        let (x, y, z, p) = (b.var("x"), b.var("y"), b.var("z"), b.var("p"));
        b.atom("R", [x, y])
            .atom("S", [y, z])
            .atom("T", [z, p])
            .atom("K", [p, x]);
        assert!(!is_acyclic(&b.build()));
    }

    #[test]
    fn single_atom_is_acyclic() {
        let mut b = QueryBuilder::new("One");
        let x = b.var("x");
        b.atom("R", [x]);
        let q = b.build();
        let t = gyo_join_tree(&q).unwrap();
        assert_eq!(t.root(), 0);
        assert_eq!(t.children(0), Vec::<usize>::new());
    }

    #[test]
    fn duplicate_edge_sets_reduce() {
        // Two atoms over the same variables: each is an ear of the other.
        let mut b = QueryBuilder::new("Dup");
        let (x, y) = (b.var("x"), b.var("y"));
        b.atom("R", [x, y]).atom("S", [x, y]);
        assert!(is_acyclic(&b.build()));
    }

    #[test]
    fn shared_vars_of_atoms() {
        let q = triangle();
        assert_eq!(shared_vars(&q, 0, 1), vec![VarId(1)]); // y
        assert_eq!(shared_vars(&q, 0, 2), vec![VarId(0)]); // x
    }

    #[test]
    fn top_down_reverses_bottom_up() {
        let t = gyo_join_tree(&path3()).unwrap();
        let mut td = t.top_down();
        td.reverse();
        assert_eq!(td, t.bottom_up);
    }
}
