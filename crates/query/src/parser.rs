//! A small Datalog front end.
//!
//! Accepts the notation used throughout the paper, e.g.
//!
//! ```text
//! Twitter(x,y,z) :- Twitter_R(x,y), Twitter_S(y,z), Twitter_T(z,x)
//! ActorPairs(a1,a2) :- ActorPerform(a1,p1), ..., f1 > f2
//! OscarWinners(a) :- ObjectName(aw, 4242), ..., y >= 1990, y < 2000
//! ```
//!
//! Identifiers in atom arguments are variables; unsigned integers are
//! constants (the dictionary-encoded form of the paper's string literals
//! such as `"Joe Pesci"`). Comparisons between variables and/or integers
//! become filters. A trailing `.` is optional.

use crate::{CmpOp, ConjunctiveQuery, QueryBuilder, Term};
use std::fmt;

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the failure occurred.
    pub at: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.as_bytes().get(self.pos).copied()
    }

    fn eat(&mut self, pat: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(pat) {
            self.pos += pat.len();
            true
        } else {
            false
        }
    }

    fn require(&mut self, pat: &str) -> Result<(), ParseError> {
        if self.eat(pat) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{pat}`")))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let bytes = self.src.as_bytes();
        let start = self.pos;
        if start >= bytes.len() || !(bytes[start].is_ascii_alphabetic() || bytes[start] == b'_') {
            return Err(self.err("expected identifier"));
        }
        let mut end = start;
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        self.pos = end;
        Ok(&self.src[start..end])
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let bytes = self.src.as_bytes();
        let start = self.pos;
        let mut end = start;
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
        if end == start {
            return Err(self.err("expected number"));
        }
        self.pos = end;
        self.src[start..end]
            .parse::<u64>()
            .map_err(|e| self.err(format!("bad number: {e}")))
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        // Longest match first.
        for (pat, op) in [
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("!=", CmpOp::Ne),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
            ("=", CmpOp::Eq),
        ] {
            if self.eat(pat) {
                return Some(op);
            }
        }
        None
    }
}

/// Parses a Datalog rule into a [`ConjunctiveQuery`].
///
/// ```
/// let q = parjoin_query::parser::parse(
///     "T(x,y,z) :- R(x,y), S(y,z), T(z,x)").unwrap();
/// assert_eq!(q.atoms.len(), 3);
/// assert_eq!(q.output_vars().len(), 3);
/// ```
pub fn parse(src: &str) -> Result<ConjunctiveQuery, ParseError> {
    let mut c = Cursor::new(src);
    let name = c.ident()?.to_string();
    let mut builder = QueryBuilder::new(&name);

    // Head variable list.
    c.require("(")?;
    let mut head = Vec::new();
    loop {
        let v = c.ident()?;
        head.push(builder.var(v));
        if !c.eat(",") {
            break;
        }
    }
    c.require(")")?;
    c.require(":-")?;

    // Body: atoms and filters, comma-separated.
    loop {
        c.skip_ws();
        // Decide: identifier followed by `(` is an atom; identifier
        // followed by a comparison is a filter; a number starts nothing
        // valid on the left.
        let save = c.pos;
        let id = c.ident()?;
        if c.peek() == Some(b'(') {
            c.require("(")?;
            let mut terms = Vec::new();
            loop {
                c.skip_ws();
                let ch = c.peek().ok_or_else(|| c.err("unexpected end in atom"))?;
                if ch.is_ascii_digit() {
                    terms.push(Term::Const(c.number()?));
                } else {
                    let v = c.ident()?;
                    terms.push(Term::Var(builder.var(v)));
                }
                if !c.eat(",") {
                    break;
                }
            }
            c.require(")")?;
            builder.atom_terms(id, terms);
        } else if let Some(op) = c.cmp_op() {
            let left = builder.var(&src[save..save + id.len()]);
            c.skip_ws();
            let ch = c.peek().ok_or_else(|| c.err("unexpected end in filter"))?;
            if ch.is_ascii_digit() {
                let k = c.number()?;
                builder.filter_vc(left, op, k);
            } else {
                let r = c.ident()?;
                let rv = builder.var(r);
                builder.filter_vv(left, op, rv);
            }
        } else {
            return Err(c.err("expected `(` (atom) or comparison (filter)"));
        }
        if !c.eat(",") {
            break;
        }
    }
    let _ = c.eat(".");
    c.skip_ws();
    if c.pos != src.len() {
        return Err(c.err("trailing input"));
    }

    builder.head(head);
    let q = builder_finish(builder)?;
    Ok(q)
}

fn builder_finish(b: QueryBuilder) -> Result<ConjunctiveQuery, ParseError> {
    // QueryBuilder::build panics on invalid queries (programming errors);
    // parsed text is user input, so surface a Result instead.
    let q = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.build()));
    q.map_err(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "invalid query".to_string());
        ParseError { at: 0, msg }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Operand};

    #[test]
    fn parses_triangle() {
        let q = parse("Twitter(x,y,z) :- Twitter_R(x,y), Twitter_S(y,z), Twitter_T(z,x)").unwrap();
        assert_eq!(q.name, "Twitter");
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.head.len(), 3);
        assert_eq!(q.atoms[2].relation, "Twitter_T");
    }

    #[test]
    fn parses_constants() {
        let q = parse("Q(a) :- ObjectName(a, 99), ActorPerform(a, p)").unwrap();
        assert_eq!(q.atoms[0].terms[1], Term::Const(99));
        assert_eq!(q.num_vars(), 2);
    }

    #[test]
    fn parses_filters() {
        let q = parse("Q(a,b) :- R(a,f1), S(b,f2), f1 > f2, f1 >= 10").unwrap();
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.filters[0].op, CmpOp::Gt);
        assert!(matches!(q.filters[0].right, Operand::Var(_)));
        assert!(matches!(q.filters[1].right, Operand::Const(10)));
    }

    #[test]
    fn trailing_dot_ok() {
        assert!(parse("Q(x) :- R(x).").is_ok());
    }

    #[test]
    fn whitespace_insensitive() {
        let q = parse("  Q ( x , y ) :-  R ( x , y ) ,  x  <=  7 ").unwrap();
        assert_eq!(q.filters.len(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("Q(x)").is_err());
        assert!(parse("Q(x) :- ").is_err());
        assert!(parse("Q(x) :- R(x) extra").is_err());
        assert!(parse("Q(x) :- 5(x)").is_err());
    }

    #[test]
    fn rejects_head_var_not_in_body() {
        let e = parse("Q(x, ghost) :- R(x)").unwrap_err();
        assert!(e.msg.contains("ghost") || e.msg.contains("unused"), "{e}");
    }

    #[test]
    fn parses_q4_shape() {
        let q = parse(
            "ActorPairs(a1, a2) :- ActorPerform(a1, p1), PerformFilm(p1, f1), \
             PerformFilm(p2, f1), ActorPerform(a2, p2), ActorPerform(a2, p3), \
             PerformFilm(p3, f2), PerformFilm(p4, f2), ActorPerform(a1, p4), f1 > f2",
        )
        .unwrap();
        assert_eq!(q.atoms.len(), 8);
        assert_eq!(q.num_vars(), 8);
        assert_eq!(q.filters.len(), 1);
    }
}
