//! Selection pushdown: bind atoms against the catalog.
//!
//! The paper pushes selections below the joins ("We pushed selection down,
//! thus selections like ObjectName(actor_id, 'Joe Pesci') … can be
//! considered as only containing very few tuples", §3 footnote 3). This
//! module performs exactly that step: every atom becomes a
//! variables-only relation with
//!
//! * constant equality applied (`ObjectName(a1, 4242)`),
//! * repeated-variable equality applied (`R(x, x)`),
//! * single-variable comparison filters applied (`y >= 1990`),
//!
//! leaving only variable-vs-variable filters for the join operators.

use crate::{CmpOp, ConjunctiveQuery, Filter, Operand, Term, VarId};
use parjoin_common::{Database, Relation};
use std::borrow::Cow;

/// An atom after selection pushdown: a relation whose columns correspond
/// one-to-one to `vars`.
#[derive(Debug, Clone)]
pub struct ResolvedAtom<'a> {
    /// Distinct variables, one per column of `rel`.
    pub vars: Vec<VarId>,
    /// The (possibly filtered/projected) data. Borrowed when no pushdown
    /// applied, to avoid copying large base relations for self-joins.
    pub rel: Cow<'a, Relation>,
    /// The base-relation name this atom came from (for reporting).
    pub base: String,
}

impl ResolvedAtom<'_> {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Column index of variable `v`, if present.
    pub fn col_of(&self, v: VarId) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }
}

/// Errors produced while resolving a query against a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// An atom references a relation not in the catalog.
    MissingRelation(String),
    /// An atom's term count differs from the base relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity in the catalog.
        expected: usize,
        /// Term count in the atom.
        got: usize,
    },
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::MissingRelation(r) => write!(f, "relation `{r}` not in database"),
            ResolveError::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(
                    f,
                    "atom over `{relation}` has {got} terms but arity is {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// Splits the query's filters into pushable single-variable filters and
/// residual (variable-vs-variable) join filters.
pub fn split_filters(q: &ConjunctiveQuery) -> (Vec<Filter>, Vec<Filter>) {
    let mut single = Vec::new();
    let mut residual = Vec::new();
    for f in &q.filters {
        match f.right {
            Operand::Const(_) => single.push(*f),
            Operand::Var(_) => residual.push(*f),
        }
    }
    (single, residual)
}

/// Resolves every atom of `q` against `db`, applying selection pushdown.
///
/// Returns the resolved atoms and the residual filters the join operators
/// must still enforce.
pub fn resolve_atoms<'a>(
    q: &ConjunctiveQuery,
    db: &'a Database,
) -> Result<(Vec<ResolvedAtom<'a>>, Vec<Filter>), ResolveError> {
    let (single, residual) = split_filters(q);
    let mut out = Vec::with_capacity(q.atoms.len());
    for atom in &q.atoms {
        let base = db
            .get(&atom.relation)
            .ok_or_else(|| ResolveError::MissingRelation(atom.relation.clone()))?;
        if base.arity() != atom.terms.len() {
            return Err(ResolveError::ArityMismatch {
                relation: atom.relation.clone(),
                expected: base.arity(),
                got: atom.terms.len(),
            });
        }

        // Distinct variables with their first column position.
        let mut vars: Vec<VarId> = Vec::new();
        let mut first_pos: Vec<usize> = Vec::new();
        for (i, t) in atom.terms.iter().enumerate() {
            if let Term::Var(v) = t {
                if !vars.contains(v) {
                    vars.push(*v);
                    first_pos.push(i);
                }
            }
        }

        // Row predicates from constants, repeated variables, and pushable
        // single-variable filters.
        let consts: Vec<(usize, u64)> = atom
            .terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t {
                Term::Const(c) => Some((i, *c)),
                Term::Var(_) => None,
            })
            .collect();
        let mut var_eqs: Vec<(usize, usize)> = Vec::new();
        for (vi, &v) in vars.iter().enumerate() {
            for (j, t) in atom.terms.iter().enumerate() {
                if matches!(t, Term::Var(w) if *w == v) && j != first_pos[vi] {
                    var_eqs.push((first_pos[vi], j));
                }
            }
        }
        let pushable: Vec<(usize, CmpOp, u64)> = single
            .iter()
            .filter_map(|f| {
                let vi = vars.iter().position(|&v| v == f.left)?;
                match f.right {
                    Operand::Const(c) => Some((first_pos[vi], f.op, c)),
                    Operand::Var(_) => None,
                }
            })
            .collect();

        let needs_project = first_pos.len() != atom.terms.len()
            || first_pos.iter().enumerate().any(|(i, &p)| i != p);
        let needs_filter = !consts.is_empty() || !var_eqs.is_empty() || !pushable.is_empty();

        let rel: Cow<'a, Relation> = if !needs_filter && !needs_project {
            Cow::Borrowed(base)
        } else {
            let filtered = base.filter(|row| {
                consts.iter().all(|&(i, c)| row[i] == c)
                    && var_eqs.iter().all(|&(a, b)| row[a] == row[b])
                    && pushable.iter().all(|&(i, op, c)| op.eval(row[i], c))
            });
            Cow::Owned(if needs_project {
                filtered.project(&first_pos)
            } else {
                filtered
            })
        };

        out.push(ResolvedAtom {
            vars,
            rel,
            base: atom.relation.clone(),
        });
    }
    Ok((out, residual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryBuilder;
    use parjoin_common::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_rows(2, [[1u64, 2], [2, 2], [3, 9]].iter()),
        );
        db.insert(
            "Name",
            Relation::from_rows(2, [[10u64, 100], [11, 101], [12, 100]].iter()),
        );
        db
    }

    #[test]
    fn plain_atom_borrows() {
        let mut b = QueryBuilder::new("Q");
        let (x, y) = (b.var("x"), b.var("y"));
        b.atom("R", [x, y]);
        let q = b.build();
        let dbv = db();
        let (atoms, residual) = resolve_atoms(&q, &dbv).unwrap();
        assert!(matches!(atoms[0].rel, Cow::Borrowed(_)));
        assert_eq!(atoms[0].vars, vec![x, y]);
        assert!(residual.is_empty());
    }

    #[test]
    fn constant_selection_applied() {
        let mut b = QueryBuilder::new("Q");
        let a = b.var("a");
        b.atom_terms("Name", [Term::Var(a), Term::Const(100)]);
        let q = b.build();
        let dbv = db();
        let (atoms, _) = resolve_atoms(&q, &dbv).unwrap();
        assert_eq!(atoms[0].len(), 2); // ids 10 and 12
        assert_eq!(atoms[0].vars, vec![a]);
        assert_eq!(atoms[0].rel.arity(), 1);
        assert_eq!(atoms[0].rel.row(0), &[10]);
        assert_eq!(atoms[0].rel.row(1), &[12]);
    }

    #[test]
    fn repeated_variable_becomes_equality() {
        let mut b = QueryBuilder::new("Q");
        let x = b.var("x");
        b.atom("R", [x, x]);
        let q = b.build();
        let dbv = db();
        let (atoms, _) = resolve_atoms(&q, &dbv).unwrap();
        assert_eq!(atoms[0].len(), 1); // only (2,2)
        assert_eq!(atoms[0].rel.row(0), &[2]);
    }

    #[test]
    fn single_var_filter_pushed() {
        let mut b = QueryBuilder::new("Q");
        let (x, y) = (b.var("x"), b.var("y"));
        b.atom("R", [x, y]);
        b.filter_vc(y, CmpOp::Ge, 5);
        let q = b.build();
        let dbv = db();
        let (atoms, residual) = resolve_atoms(&q, &dbv).unwrap();
        assert_eq!(atoms[0].len(), 1); // only (3,9)
        assert!(residual.is_empty());
    }

    #[test]
    fn var_var_filter_is_residual() {
        let mut b = QueryBuilder::new("Q");
        let (x, y) = (b.var("x"), b.var("y"));
        b.atom("R", [x, y]);
        b.filter_vv(x, CmpOp::Lt, y);
        let q = b.build();
        let dbv = db();
        let (atoms, residual) = resolve_atoms(&q, &dbv).unwrap();
        assert_eq!(atoms[0].len(), 3); // unchanged
        assert_eq!(residual.len(), 1);
    }

    #[test]
    fn missing_relation_error() {
        let mut b = QueryBuilder::new("Q");
        let x = b.var("x");
        b.atom("Ghost", [x, x]);
        let q = b.build();
        let dbv = db();
        assert!(matches!(
            resolve_atoms(&q, &dbv),
            Err(ResolveError::MissingRelation(r)) if r == "Ghost"
        ));
    }

    #[test]
    fn arity_mismatch_error() {
        let mut b = QueryBuilder::new("Q");
        let x = b.var("x");
        b.atom("R", [x]);
        let q = b.build();
        let dbv = db();
        assert!(matches!(
            resolve_atoms(&q, &dbv),
            Err(ResolveError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn col_of_lookup() {
        let mut b = QueryBuilder::new("Q");
        let (x, y) = (b.var("x"), b.var("y"));
        b.atom("R", [x, y]);
        let q = b.build();
        let dbv = db();
        let (atoms, _) = resolve_atoms(&q, &dbv).unwrap();
        assert_eq!(atoms[0].col_of(y), Some(1));
        assert_eq!(atoms[0].col_of(VarId(7)), None);
    }
}
