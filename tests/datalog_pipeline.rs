//! End-to-end: Datalog text → parser → optimizer → parallel execution.

use parjoin::prelude::*;

#[test]
fn parsed_query_runs_end_to_end() {
    let q = parjoin::query::parser::parse(
        "Triangle(x, y, z) :- Twitter(x, y), Twitter(y, z), Twitter(z, x)",
    )
    .unwrap();
    let db = Scale::tiny().twitter_db(42);
    let r = run_config(
        &q,
        &db,
        &Cluster::new(8),
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &PlanOptions::default(),
    )
    .unwrap();
    assert!(r.output_tuples > 0);
    assert_eq!(r.hc_config.as_ref().unwrap().num_cells(), 8); // 2×2×2
}

#[test]
fn parsed_equals_programmatic_for_all_workloads() {
    // Each QuerySpec's Display form re-parses to a query that computes
    // the same result.
    let scale = Scale {
        twitter_nodes: 300,
        twitter_m: 3,
        freebase_performances: 250,
    };
    for spec in all_queries() {
        let db = scale.db_for(spec.dataset, 9);
        let text = format!("{}", spec.query);
        let parsed = parjoin::query::parser::parse(&text).expect("parses");
        let opts = PlanOptions {
            collect_output: true,
            ..Default::default()
        };
        let cluster = Cluster::new(3);
        let a = run_config(
            &spec.query,
            &db,
            &cluster,
            ShuffleAlg::HyperCube,
            JoinAlg::Tributary,
            &opts,
        )
        .unwrap();
        let b = run_config(
            &parsed,
            &db,
            &cluster,
            ShuffleAlg::HyperCube,
            JoinAlg::Tributary,
            &opts,
        )
        .unwrap();
        let mut ra: Vec<Vec<u64>> = a.output.unwrap().rows().map(|r| r.to_vec()).collect();
        let mut rb: Vec<Vec<u64>> = b.output.unwrap().rows().map(|r| r.to_vec()).collect();
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb, "{}", spec.name);
    }
}

#[test]
fn filters_in_datalog_affect_results() {
    let db = Scale::tiny().twitter_db(1);
    let with =
        parjoin::query::parser::parse("P(x, y, z) :- Twitter(x, y), Twitter(y, z), x < z").unwrap();
    let without =
        parjoin::query::parser::parse("P(x, y, z) :- Twitter(x, y), Twitter(y, z)").unwrap();
    let cluster = Cluster::new(4);
    let opts = PlanOptions::default();
    let a = run_config(
        &with,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &opts,
    )
    .unwrap();
    let b = run_config(
        &without,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &opts,
    )
    .unwrap();
    assert!(a.output_tuples < b.output_tuples);
    assert!(a.output_tuples > 0);
}
