//! Cross-crate correctness: every shuffle×join configuration (and, for
//! acyclic queries, the semijoin plan) computes the same answer for all
//! eight paper queries.

use parjoin::engine::semijoin::run_semijoin_plan;
use parjoin::prelude::*;

fn run_rows(
    spec: &QuerySpec,
    db: &Database,
    workers: usize,
    s: ShuffleAlg,
    j: JoinAlg,
) -> Vec<Vec<u64>> {
    let cluster = Cluster::new(workers).with_seed(11);
    let opts = PlanOptions {
        collect_output: true,
        ..Default::default()
    };
    let r = run_config(&spec.query, db, &cluster, s, j, &opts)
        .unwrap_or_else(|e| panic!("{} {s:?}/{j:?}: {e}", spec.name));
    let mut rows: Vec<Vec<u64>> = r
        .output
        .expect("collected")
        .rows()
        .map(|x| x.to_vec())
        .collect();
    rows.sort();
    rows
}

fn all_configs() -> Vec<(ShuffleAlg, JoinAlg)> {
    vec![
        (ShuffleAlg::Regular, JoinAlg::Hash),
        (ShuffleAlg::Regular, JoinAlg::Tributary),
        (ShuffleAlg::Broadcast, JoinAlg::Hash),
        (ShuffleAlg::Broadcast, JoinAlg::Tributary),
        (ShuffleAlg::HyperCube, JoinAlg::Hash),
        (ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ]
}

fn check_query(spec: &QuerySpec, expect_nonempty: bool) {
    check_query_at(spec, expect_nonempty, Scale::tiny());
}

fn check_query_at(spec: &QuerySpec, expect_nonempty: bool, scale: Scale) {
    let db = scale.db_for(spec.dataset, 7);
    let reference = run_rows(spec, &db, 4, ShuffleAlg::Regular, JoinAlg::Hash);
    if expect_nonempty {
        assert!(
            !reference.is_empty(),
            "{} should have results at tiny scale",
            spec.name
        );
    }
    for (s, j) in all_configs().into_iter().skip(1) {
        let got = run_rows(spec, &db, 4, s, j);
        assert_eq!(got, reference, "{} disagrees under {s:?}/{j:?}", spec.name);
    }
    if !spec.cyclic {
        let cluster = Cluster::new(4).with_seed(11);
        let opts = PlanOptions {
            collect_output: true,
            ..Default::default()
        };
        let sj = run_semijoin_plan(&spec.query, &db, &cluster, &opts)
            .unwrap_or_else(|e| panic!("{} semijoin: {e}", spec.name));
        let mut rows: Vec<Vec<u64>> = sj
            .run
            .output
            .expect("collected")
            .rows()
            .map(|x| x.to_vec())
            .collect();
        rows.sort();
        assert_eq!(rows, reference, "{} semijoin disagrees", spec.name);
    }
}

#[test]
fn q1_triangles() {
    check_query(&parjoin::datagen::workloads::q1(), true);
}

#[test]
fn q2_cliques() {
    // 4-cliques may or may not exist at tiny scale; agreement matters.
    check_query(&parjoin::datagen::workloads::q2(), false);
}

#[test]
fn q3_cast_members() {
    check_query(&parjoin::datagen::workloads::q3(), true);
}

#[test]
fn q4_actor_pairs() {
    // Q4's regular-shuffle plan blows up combinatorially (the paper's
    // point: 13.9 *billion* intermediate tuples at full scale), so the
    // agreement check runs on an extra-small catalog.
    let scale = Scale {
        twitter_nodes: 300,
        twitter_m: 3,
        freebase_performances: 250,
    };
    check_query_at(&parjoin::datagen::workloads::q4(), false, scale);
}

#[test]
fn q5_rectangles() {
    check_query(&parjoin::datagen::workloads::q5(), true);
}

#[test]
fn q6_two_rings() {
    check_query(&parjoin::datagen::workloads::q6(), false);
}

#[test]
fn q7_oscar_winners() {
    check_query(&parjoin::datagen::workloads::q7(), true);
}

#[test]
fn q8_actor_director() {
    check_query(&parjoin::datagen::workloads::q8(), true);
}
