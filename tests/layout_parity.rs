//! Trie-layout determinism: on every shuffle×join configuration of
//! every paper query, the columnar level-segmented trie produces output
//! byte-identical to the row-major sorted-array layout — sequentially
//! and through the work-stealing morsel probe at 1, 2, and 4 threads.
//!
//! The row-layout baseline runs with `sequential_probe` and
//! `sequential_prepare` (no caches, one thread): the most conservative
//! reference there is. Everything the columnar path adds — the CSR trie,
//! the chunk-wise gallop, morsel stealing, the SortCache + TrieCache
//! layering — must be invisible in the raw output bytes.

use parjoin::prelude::*;

fn all_configs() -> Vec<(ShuffleAlg, JoinAlg)> {
    vec![
        (ShuffleAlg::Regular, JoinAlg::Hash),
        (ShuffleAlg::Regular, JoinAlg::Tributary),
        (ShuffleAlg::Broadcast, JoinAlg::Hash),
        (ShuffleAlg::Broadcast, JoinAlg::Tributary),
        (ShuffleAlg::HyperCube, JoinAlg::Hash),
        (ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ]
}

fn run_layout(
    spec: &QuerySpec,
    db: &Database,
    s: ShuffleAlg,
    j: JoinAlg,
    layout: TrieLayout,
    probe_threads: Option<usize>,
) -> RunResult {
    let cluster = Cluster::new(4).with_seed(11);
    let opts = PlanOptions {
        collect_output: true,
        trie_layout: layout,
        sequential_probe: probe_threads.is_none(),
        sequential_prepare: probe_threads.is_none(),
        probe_threads,
        ..Default::default()
    };
    run_config(&spec.query, db, &cluster, s, j, &opts).unwrap_or_else(|e| {
        panic!(
            "{} {s:?}/{j:?} ({layout:?}, probe_threads={probe_threads:?}): {e}",
            spec.name
        )
    })
}

fn check_query_at(spec: &QuerySpec, scale: Scale) {
    let db = scale.db_for(spec.dataset, 7);
    for (s, j) in all_configs() {
        let baseline = run_layout(spec, &db, s, j, TrieLayout::Row, None);
        let base_out = baseline.output.as_ref().expect("collected");
        for t in [None, Some(1usize), Some(2), Some(4)] {
            let columnar = run_layout(spec, &db, s, j, TrieLayout::Columnar, t);
            let col_out = columnar.output.as_ref().expect("collected");
            assert_eq!(
                base_out.arity(),
                col_out.arity(),
                "{} {s:?}/{j:?} t={t:?}: arity drifted between layouts",
                spec.name
            );
            assert_eq!(
                base_out.raw(),
                col_out.raw(),
                "{} {s:?}/{j:?} t={t:?}: columnar output not byte-identical to row layout",
                spec.name
            );
            assert_eq!(
                baseline.output_tuples, columnar.output_tuples,
                "{} {s:?}/{j:?} t={t:?}: output counts drifted between layouts",
                spec.name
            );
        }
    }
}

fn check_query(spec: &QuerySpec) {
    check_query_at(spec, Scale::tiny());
}

#[test]
fn q1_triangles_columnar_identical() {
    check_query(&parjoin::datagen::workloads::q1());
}

#[test]
fn q2_cliques_columnar_identical() {
    check_query(&parjoin::datagen::workloads::q2());
}

#[test]
fn q3_cast_members_columnar_identical() {
    check_query(&parjoin::datagen::workloads::q3());
}

#[test]
fn q4_actor_pairs_columnar_identical() {
    // Q4's regular-shuffle plan blows up combinatorially; use the same
    // extra-small catalog as the configs_agree suite.
    let scale = Scale {
        twitter_nodes: 300,
        twitter_m: 3,
        freebase_performances: 250,
    };
    check_query_at(&parjoin::datagen::workloads::q4(), scale);
}

#[test]
fn q5_rectangles_columnar_identical() {
    check_query(&parjoin::datagen::workloads::q5());
}

#[test]
fn q6_two_rings_columnar_identical() {
    check_query(&parjoin::datagen::workloads::q6());
}

#[test]
fn q7_oscar_winners_columnar_identical() {
    check_query(&parjoin::datagen::workloads::q7());
}

#[test]
fn q8_actor_director_columnar_identical() {
    check_query(&parjoin::datagen::workloads::q8());
}

#[test]
fn columnar_runs_report_trie_cache_traffic() {
    // A cache-touching Tributary config under the columnar layout must
    // consult the TrieCache (sequential_prepare bypasses it, parallel
    // prepare does not), and the row layout must never touch it.
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().db_for(spec.dataset, 7);
    let cluster = Cluster::new(4).with_seed(11);
    let opts = PlanOptions {
        collect_output: true,
        trie_layout: TrieLayout::Columnar,
        ..Default::default()
    };
    let r = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &opts,
    )
    .expect("columnar HC_TJ");
    assert!(
        r.trie_cache_hits + r.trie_cache_misses > 0,
        "columnar prepare recorded no trie-cache lookups"
    );
    let row_opts = PlanOptions {
        trie_layout: TrieLayout::Row,
        ..opts
    };
    let row = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &row_opts,
    )
    .expect("row HC_TJ");
    assert_eq!(
        (row.trie_cache_hits, row.trie_cache_misses),
        (0, 0),
        "row layout must not touch the trie cache"
    );
}
