//! Group-count aggregation: the §1 graphlet-frequency use case.

use parjoin::prelude::*;

fn q1_grouped_by_x() -> ConjunctiveQuery {
    // Triangle count per starting vertex.
    parjoin::query::parser::parse(
        "TrianglesPerNode(x) :- Twitter(x, y), Twitter(y, z), Twitter(z, x)",
    )
    .unwrap()
}

fn run(
    q: &ConjunctiveQuery,
    db: &Database,
    workers: usize,
    s: ShuffleAlg,
    j: JoinAlg,
    group: bool,
) -> RunResult {
    let cluster = Cluster::new(workers).with_seed(5);
    let opts = PlanOptions {
        collect_output: true,
        group_count: group,
        ..Default::default()
    };
    run_config(q, db, &cluster, s, j, &opts).expect("plan runs")
}

#[test]
fn group_counts_match_bag_output() {
    let q = q1_grouped_by_x();
    let db = Scale::tiny().twitter_db(3);
    let bag = run(&q, &db, 4, ShuffleAlg::HyperCube, JoinAlg::Tributary, false);
    let grouped = run(&q, &db, 4, ShuffleAlg::HyperCube, JoinAlg::Tributary, true);

    // Reference: count occurrences of each x in the bag output.
    let mut expect = std::collections::BTreeMap::new();
    for row in bag.output.as_ref().unwrap().rows() {
        *expect.entry(row[0]).or_insert(0u64) += 1;
    }
    let out = grouped.output.unwrap();
    assert_eq!(out.arity(), 2, "(x, count)");
    let mut got = std::collections::BTreeMap::new();
    for row in out.rows() {
        assert!(
            got.insert(row[0], row[1]).is_none(),
            "duplicate group {}",
            row[0]
        );
    }
    assert_eq!(got, expect);
    // Sum of counts = bag cardinality; groups = distinct heads.
    assert_eq!(got.values().sum::<u64>(), bag.output_tuples);
    assert_eq!(grouped.output_tuples, expect.len() as u64);
}

#[test]
fn grouping_agrees_across_configs_and_workers() {
    let q = q1_grouped_by_x();
    let db = Scale::tiny().twitter_db(9);
    let reference = {
        let r = run(&q, &db, 1, ShuffleAlg::Regular, JoinAlg::Hash, true);
        let mut rows: Vec<Vec<u64>> = r.output.unwrap().rows().map(|x| x.to_vec()).collect();
        rows.sort();
        rows
    };
    for workers in [2, 5, 16] {
        for (s, j) in [
            (ShuffleAlg::Regular, JoinAlg::Hash),
            (ShuffleAlg::Broadcast, JoinAlg::Tributary),
            (ShuffleAlg::HyperCube, JoinAlg::Tributary),
        ] {
            let r = run(&q, &db, workers, s, j, true);
            let mut rows: Vec<Vec<u64>> = r.output.unwrap().rows().map(|x| x.to_vec()).collect();
            rows.sort();
            assert_eq!(rows, reference, "{workers} workers {s:?}/{j:?}");
        }
    }
}

#[test]
fn combine_shuffle_is_accounted() {
    let q = q1_grouped_by_x();
    let db = Scale::tiny().twitter_db(3);
    let plain = run(&q, &db, 4, ShuffleAlg::HyperCube, JoinAlg::Tributary, false);
    let grouped = run(&q, &db, 4, ShuffleAlg::HyperCube, JoinAlg::Tributary, true);
    assert_eq!(grouped.shuffles.len(), plain.shuffles.len() + 1);
    assert!(grouped.tuples_shuffled > plain.tuples_shuffled);
    assert_eq!(grouped.rounds, plain.rounds + 1);
    let combine = grouped.shuffles.last().unwrap();
    assert!(combine.label.contains("group-count"));
    // The combiner sends at most one row per (worker, group).
    assert!(combine.tuples_sent <= plain.output_tuples);
}

#[test]
fn global_count_via_constant_free_group() {
    // Grouping on the full head degenerates gracefully: every distinct
    // assignment is its own group of size 1 for a full CQ over set data.
    let q =
        parjoin::query::parser::parse("T(x, y, z) :- Twitter(x, y), Twitter(y, z), Twitter(z, x)")
            .unwrap();
    let db = Scale::tiny().twitter_db(3);
    let grouped = run(&q, &db, 4, ShuffleAlg::HyperCube, JoinAlg::Tributary, true);
    let out = grouped.output.unwrap();
    assert!(
        out.rows().all(|r| r[3] == 1),
        "full-head groups are singletons"
    );
}
