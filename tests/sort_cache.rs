//! Sort-pipeline correctness: every shuffle×join configuration on every
//! paper query produces byte-identical output whether Tributary atoms
//! are prepared through the default pipeline (process-wide sorted-view
//! cache + intra-worker parallel radix sort) or the sequential baseline
//! (`sequential_prepare`, plain per-atom comparator-path sorts) — and a
//! repeated identical run reports sort-cache hits.
//!
//! Byte-identical means exactly that: the collected outputs' backing
//! buffers are compared raw, unsorted. The radix sort, the chunked
//! parallel sort, and cache reuse are all stable-equivalent to the
//! serial sort, so no row may move.

use parjoin::prelude::*;

fn all_configs() -> Vec<(ShuffleAlg, JoinAlg)> {
    vec![
        (ShuffleAlg::Regular, JoinAlg::Hash),
        (ShuffleAlg::Regular, JoinAlg::Tributary),
        (ShuffleAlg::Broadcast, JoinAlg::Hash),
        (ShuffleAlg::Broadcast, JoinAlg::Tributary),
        (ShuffleAlg::HyperCube, JoinAlg::Hash),
        (ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ]
}

fn run_with(
    spec: &QuerySpec,
    db: &Database,
    s: ShuffleAlg,
    j: JoinAlg,
    sequential_prepare: bool,
) -> RunResult {
    let cluster = Cluster::new(4).with_seed(11);
    let opts = PlanOptions {
        collect_output: true,
        sequential_prepare,
        ..Default::default()
    };
    run_config(&spec.query, db, &cluster, s, j, &opts).unwrap_or_else(|e| {
        panic!(
            "{} {s:?}/{j:?} (sequential_prepare={sequential_prepare}): {e}",
            spec.name
        )
    })
}

fn check_query_at(spec: &QuerySpec, scale: Scale) {
    let db = scale.db_for(spec.dataset, 7);
    for (s, j) in all_configs() {
        let baseline = run_with(spec, &db, s, j, true);
        let cached = run_with(spec, &db, s, j, false);
        let base_out = baseline.output.as_ref().expect("collected");
        let cached_out = cached.output.as_ref().expect("collected");
        assert_eq!(
            base_out.arity(),
            cached_out.arity(),
            "{} {s:?}/{j:?}: arity drifted",
            spec.name
        );
        assert_eq!(
            base_out.raw(),
            cached_out.raw(),
            "{} {s:?}/{j:?}: cached/parallel prepare output not byte-identical",
            spec.name
        );
        assert_eq!(
            baseline.output_tuples, cached.output_tuples,
            "{} {s:?}/{j:?}: output counts drifted",
            spec.name
        );
        // The sequential baseline never consults the cache.
        assert_eq!(
            (baseline.sort_cache_hits, baseline.sort_cache_misses),
            (0, 0),
            "{} {s:?}/{j:?}: sequential_prepare must bypass the cache",
            spec.name
        );
        // Only Tributary one-round plans have a prepare phase to count.
        if j == JoinAlg::Tributary && s != ShuffleAlg::Regular {
            assert!(
                cached.sort_cache_hits + cached.sort_cache_misses > 0,
                "{} {s:?}/{j:?}: TJ prepare recorded no cache lookups",
                spec.name
            );
        } else {
            assert_eq!(
                (cached.sort_cache_hits, cached.sort_cache_misses),
                (0, 0),
                "{} {s:?}/{j:?}: non-TJ-prepare plan touched the cache",
                spec.name
            );
        }
    }
}

fn check_query(spec: &QuerySpec) {
    check_query_at(spec, Scale::tiny());
}

#[test]
fn q1_triangles_cached_prepare_identical() {
    check_query(&parjoin::datagen::workloads::q1());
}

#[test]
fn q2_cliques_cached_prepare_identical() {
    check_query(&parjoin::datagen::workloads::q2());
}

#[test]
fn q3_cast_members_cached_prepare_identical() {
    check_query(&parjoin::datagen::workloads::q3());
}

#[test]
fn q4_actor_pairs_cached_prepare_identical() {
    // Q4's regular-shuffle plan blows up combinatorially; use the same
    // extra-small catalog as the configs_agree suite.
    let scale = Scale {
        twitter_nodes: 300,
        twitter_m: 3,
        freebase_performances: 250,
    };
    check_query_at(&parjoin::datagen::workloads::q4(), scale);
}

#[test]
fn q5_rectangles_cached_prepare_identical() {
    check_query(&parjoin::datagen::workloads::q5());
}

#[test]
fn q6_two_rings_cached_prepare_identical() {
    check_query(&parjoin::datagen::workloads::q6());
}

#[test]
fn q7_oscar_winners_cached_prepare_identical() {
    check_query(&parjoin::datagen::workloads::q7());
}

#[test]
fn q8_actor_director_cached_prepare_identical() {
    check_query(&parjoin::datagen::workloads::q8());
}

#[test]
fn second_identical_run_hits_the_cache() {
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().db_for(spec.dataset, 7);
    let first = run_with(&spec, &db, ShuffleAlg::Broadcast, JoinAlg::Tributary, false);
    let second = run_with(&spec, &db, ShuffleAlg::Broadcast, JoinAlg::Tributary, false);
    assert_eq!(
        first.output.as_ref().expect("collected").raw(),
        second.output.as_ref().expect("collected").raw(),
        "identical runs must agree"
    );
    // The second run re-prepares the same post-shuffle fragments with
    // the same permutations, so every lookup the first run populated
    // now hits.
    assert!(
        second.sort_cache_hits >= 1,
        "second identical run reported no cache hits (hits={}, misses={})",
        second.sort_cache_hits,
        second.sort_cache_misses
    );
    assert!(
        second.sort_cache_hits >= first.sort_cache_hits,
        "cache hits regressed between identical runs"
    );
}

#[test]
fn prep_probe_breakdown_covers_local_join_cpu() {
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().db_for(spec.dataset, 7);
    let r = run_with(&spec, &db, ShuffleAlg::Broadcast, JoinAlg::Tributary, false);
    let pp = r.prep_probe();
    assert_eq!(pp.prep, r.sort_cpu());
    assert_eq!(pp.probe, r.join_cpu());
    assert!(
        (0.0..=1.0).contains(&pp.prep_fraction()),
        "prep fraction out of range: {}",
        pp.prep_fraction()
    );
    // The TJ plan did sort and did join.
    assert!(pp.prep + pp.probe > std::time::Duration::ZERO);
}
