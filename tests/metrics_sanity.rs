//! The engine's measurements must obey the paper's analytical accounting:
//! hypercube replication factors, broadcast volumes, skew definitions,
//! and the Algorithm 1 workload model.

use parjoin::prelude::*;

#[test]
fn hypercube_shuffle_matches_expected_replication() {
    // With a k-dim config, atom replication = ∏ of unpinned dims; the
    // measured shuffle volume must equal the analytical expectation
    // exactly (replication is deterministic, only placement is hashed).
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().twitter_db(3);
    let edges = db.expect("Twitter").len() as u64;
    let cluster = Cluster::new(64);
    let r = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &PlanOptions::default(),
    )
    .unwrap();
    let cfg = r.hc_config.as_ref().unwrap();
    assert_eq!(cfg.dims(), &[4, 4, 4], "equal-size triangle at 64 workers");
    // Paper §3.1: "Each relation is replicated 4 times" → 3 × 4 × |E|.
    assert_eq!(r.tuples_shuffled, 3 * 4 * edges);
}

#[test]
fn broadcast_volume_is_card_times_workers() {
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().twitter_db(3);
    let edges = db.expect("Twitter").len() as u64;
    let workers = 16;
    let r = run_config(
        &spec.query,
        &db,
        &Cluster::new(workers),
        ShuffleAlg::Broadcast,
        JoinAlg::Hash,
        &PlanOptions::default(),
    )
    .unwrap();
    // Two of the three self-join copies are broadcast.
    assert_eq!(r.tuples_shuffled, 2 * edges * workers as u64);
    for s in &r.shuffles {
        assert!(
            (s.consumer_skew() - 1.0).abs() < 1e-9,
            "broadcast has no skew"
        );
    }
}

#[test]
fn regular_shuffle_base_relations_balanced_intermediate_skewed() {
    // Table 2's shape: base-relation shuffles have small consumer skew;
    // the intermediate result shuffle is far more skewed (power-law y).
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::small().twitter_db(4);
    let r = run_config(
        &spec.query,
        &db,
        &Cluster::new(64),
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &PlanOptions::default(),
    )
    .unwrap();
    // Shuffles: R→h, S→h, RS→h, T→h. Table 2's shape: the *base*
    // relations are round-robin partitioned, so their producer skew is 1;
    // the intermediate result was produced by a skewed join, so its
    // producer skew is large ("the skew factors are multiplied", 20.8 in
    // the paper).
    assert_eq!(r.shuffles.len(), 4);
    let base_producer = r.shuffles[0].producer_skew();
    let intermediate_producer = r.shuffles[2].producer_skew();
    assert!(
        (base_producer - 1.0).abs() < 0.05,
        "round-robin base: {base_producer}"
    );
    assert!(
        intermediate_producer > 2.0,
        "power-law data must skew the intermediate result, got {intermediate_producer}"
    );
    // And the base relations' consumer skew is visibly above 1 (1.35 and
    // 1.72 in Table 2) because a single hashed attribute is power-law.
    let base_consumer = r.shuffles[0].consumer_skew();
    assert!(
        base_consumer > 1.05,
        "hashed power-law attribute: {base_consumer}"
    );
}

#[test]
fn algorithm1_workload_predicts_hypercube_balance() {
    // The measured per-worker received volume under HC must stay close
    // to the Algorithm 1 workload model (expected tuples per worker).
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::small().twitter_db(5);
    let r = run_config(
        &spec.query,
        &db,
        &Cluster::new(64),
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &PlanOptions::default(),
    )
    .unwrap();
    let mut received = vec![0u64; 64];
    for s in &r.shuffles {
        for (w, &c) in s.per_consumer.iter().enumerate() {
            received[w] += c;
        }
    }
    let avg = received.iter().sum::<u64>() as f64 / 64.0;
    let max = *received.iter().max().unwrap() as f64;
    // The paper measured 1.05 consumer skew for HCS on Q1; allow slack
    // for our smaller data.
    assert!(max / avg < 1.8, "HC shuffle skew {}", max / avg);
}

#[test]
fn cpu_and_wall_relationships() {
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().twitter_db(6);
    let r = run_config(
        &spec.query,
        &db,
        &Cluster::new(8),
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &PlanOptions::default(),
    )
    .unwrap();
    assert!(r.total_cpu >= r.wall, "total CPU ≥ straggler wall");
    assert_eq!(r.per_worker_busy.len(), 8);
    let sum: std::time::Duration = r.per_worker_busy.iter().sum();
    assert_eq!(sum, r.total_cpu);
    // Sort + join decomposition covers the busy time.
    let parts: std::time::Duration = r.sort_cpu() + r.join_cpu();
    assert!(parts <= r.total_cpu + std::time::Duration::from_millis(1));
}

#[test]
fn tuples_shuffled_equals_sum_of_stats() {
    let spec = parjoin::datagen::workloads::q3();
    let db = Scale::tiny().freebase_db(2);
    for alg in [
        ShuffleAlg::Regular,
        ShuffleAlg::Broadcast,
        ShuffleAlg::HyperCube,
    ] {
        let r = run_config(
            &spec.query,
            &db,
            &Cluster::new(8),
            alg,
            JoinAlg::Hash,
            &PlanOptions::default(),
        )
        .unwrap();
        assert_eq!(
            r.tuples_shuffled,
            r.shuffles.iter().map(|s| s.tuples_sent).sum::<u64>(),
            "{alg:?}"
        );
    }
}
