//! Results must be independent of cluster size and hash seeds.

use parjoin::prelude::*;

fn triangles(workers: usize, seed: u64, s: ShuffleAlg, j: JoinAlg) -> Vec<Vec<u64>> {
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().twitter_db(5);
    let cluster = Cluster::new(workers).with_seed(seed);
    let opts = PlanOptions {
        collect_output: true,
        ..Default::default()
    };
    let r = run_config(&spec.query, &db, &cluster, s, j, &opts).unwrap();
    let mut rows: Vec<Vec<u64>> = r.output.unwrap().rows().map(|x| x.to_vec()).collect();
    rows.sort();
    rows
}

#[test]
fn invariant_across_worker_counts() {
    let reference = triangles(1, 0, ShuffleAlg::HyperCube, JoinAlg::Tributary);
    assert!(!reference.is_empty());
    for workers in [2, 3, 5, 8, 16, 64] {
        for (s, j) in [
            (ShuffleAlg::Regular, JoinAlg::Hash),
            (ShuffleAlg::Broadcast, JoinAlg::Tributary),
            (ShuffleAlg::HyperCube, JoinAlg::Tributary),
            (ShuffleAlg::HyperCube, JoinAlg::Hash),
        ] {
            assert_eq!(
                triangles(workers, 0, s, j),
                reference,
                "{workers} workers, {s:?}/{j:?}"
            );
        }
    }
}

#[test]
fn invariant_across_seeds() {
    let reference = triangles(4, 0, ShuffleAlg::HyperCube, JoinAlg::Tributary);
    for seed in [1, 7, 99, 12345] {
        assert_eq!(
            triangles(4, seed, ShuffleAlg::HyperCube, JoinAlg::Tributary),
            reference,
            "seed {seed}"
        );
        assert_eq!(
            triangles(4, seed, ShuffleAlg::Regular, JoinAlg::Hash),
            reference,
            "seed {seed} RS"
        );
    }
}

#[test]
fn shuffle_counts_are_deterministic() {
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().twitter_db(5);
    let cluster = Cluster::new(8).with_seed(3);
    let opts = PlanOptions::default();
    let a = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &opts,
    )
    .unwrap();
    let b = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &opts,
    )
    .unwrap();
    assert_eq!(a.tuples_shuffled, b.tuples_shuffled);
    assert_eq!(a.output_tuples, b.output_tuples);
    for (x, y) in a.shuffles.iter().zip(&b.shuffles) {
        assert_eq!(x.per_consumer, y.per_consumer);
    }
}
