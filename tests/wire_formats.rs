//! Cross-format correctness: every wire format variant — the legacy
//! varint framing, the zero-copy vectored framing, and vectored with
//! delta+varint column compression — must produce byte-identical query
//! output on Q1–Q8 under all six shuffle×join configurations, on every
//! streaming transport. The Local path (no wire at all) is the baseline,
//! so this suite also proves the formats agree with each other.
//!
//! Alongside output identity it pins the byte-accounting contract: with
//! compression off, `bytes_shuffled_raw == bytes_shuffled` (the raw
//! tally is the uncompressed-equivalent cost); with compression on,
//! raw >= wire. And the analyzer's per-frame estimate — the arithmetic
//! behind the R411/R414 batch-size pre-flight — must track the bytes the
//! exchange actually moves to within 10%.

use parjoin::prelude::*;

fn streaming_transports() -> Vec<TransportKind> {
    let mut t = vec![TransportKind::InProcess];
    if cfg!(feature = "transport-tcp") {
        t.push(TransportKind::Tcp);
    }
    t
}

fn all_configs() -> Vec<(ShuffleAlg, JoinAlg)> {
    vec![
        (ShuffleAlg::Regular, JoinAlg::Hash),
        (ShuffleAlg::Regular, JoinAlg::Tributary),
        (ShuffleAlg::Broadcast, JoinAlg::Hash),
        (ShuffleAlg::Broadcast, JoinAlg::Tributary),
        (ShuffleAlg::HyperCube, JoinAlg::Hash),
        (ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ]
}

/// The wire variants under test: (label, frame format, compression).
fn variants() -> Vec<(&'static str, WireFormat, bool)> {
    vec![
        ("varint", WireFormat::Varint, false),
        ("vectored", WireFormat::Vectored, false),
        ("vectored+delta", WireFormat::Vectored, true),
    ]
}

fn run_under(
    spec: &QuerySpec,
    db: &Database,
    s: ShuffleAlg,
    j: JoinAlg,
    transport: TransportKind,
    format: WireFormat,
    compression: bool,
) -> RunResult {
    // Small batches force multi-batch streams even at tiny scale, so the
    // flush path (not just the final partial batch) is exercised.
    let cluster = Cluster::new(4)
        .with_seed(11)
        .with_transport(transport)
        .with_batch_tuples(512)
        .with_wire_format(format);
    let opts = PlanOptions {
        collect_output: true,
        wire_compression: compression,
        ..Default::default()
    };
    run_config(&spec.query, db, &cluster, s, j, &opts).unwrap_or_else(|e| {
        panic!(
            "{} {s:?}/{j:?} on {transport} ({format:?}, compression={compression}): {e}",
            spec.name
        )
    })
}

fn check_query_at(spec: &QuerySpec, scale: Scale) {
    let db = scale.db_for(spec.dataset, 7);
    for (s, j) in all_configs() {
        let local = run_under(
            spec,
            &db,
            s,
            j,
            TransportKind::Local,
            WireFormat::default(),
            false,
        );
        let local_out = local.output.as_ref().expect("collected");
        for transport in streaming_transports() {
            for (name, format, compression) in variants() {
                let streamed = run_under(spec, &db, s, j, transport, format, compression);
                let streamed_out = streamed.output.as_ref().expect("collected");
                assert_eq!(
                    local_out.raw(),
                    streamed_out.raw(),
                    "{} {s:?}/{j:?} on {transport}/{name}: output not byte-identical",
                    spec.name
                );
                assert_eq!(
                    local.tuples_shuffled, streamed.tuples_shuffled,
                    "{} {s:?}/{j:?} on {transport}/{name}: tuple tallies drifted",
                    spec.name
                );
                if compression {
                    assert!(
                        streamed.bytes_shuffled_raw >= streamed.bytes_shuffled,
                        "{} {s:?}/{j:?} on {transport}/{name}: compression inflated the wire \
                         ({} raw < {} sent)",
                        spec.name,
                        streamed.bytes_shuffled_raw,
                        streamed.bytes_shuffled
                    );
                } else {
                    assert_eq!(
                        streamed.bytes_shuffled_raw, streamed.bytes_shuffled,
                        "{} {s:?}/{j:?} on {transport}/{name}: raw tally must equal wire \
                         tally when compression is off",
                        spec.name
                    );
                }
            }
        }
    }
}

fn check_query(spec: &QuerySpec) {
    check_query_at(spec, Scale::tiny());
}

#[test]
fn q1_triangles_all_formats() {
    check_query(&parjoin::datagen::workloads::q1());
}

#[test]
fn q2_cliques_all_formats() {
    check_query(&parjoin::datagen::workloads::q2());
}

#[test]
fn q3_cast_members_all_formats() {
    check_query(&parjoin::datagen::workloads::q3());
}

#[test]
fn q4_actor_pairs_all_formats() {
    // Q4's regular-shuffle plan blows up combinatorially; use the same
    // extra-small catalog as the transports suite.
    let scale = Scale {
        twitter_nodes: 300,
        twitter_m: 3,
        freebase_performances: 250,
    };
    check_query_at(&parjoin::datagen::workloads::q4(), scale);
}

#[test]
fn q5_rectangles_all_formats() {
    check_query(&parjoin::datagen::workloads::q5());
}

#[test]
fn q6_two_rings_all_formats() {
    check_query(&parjoin::datagen::workloads::q6());
}

#[test]
fn q7_oscar_winners_all_formats() {
    check_query(&parjoin::datagen::workloads::q7());
}

#[test]
fn q8_actor_director_all_formats() {
    check_query(&parjoin::datagen::workloads::q8());
}

/// The analyzer's per-frame byte estimate (`estimated_frame_bytes`, the
/// arithmetic behind R411/R414) multiplied by the observed batch count
/// must land within 10% of the bytes the exchange actually sent. Full
/// batches match exactly; the slack covers each stream's partial tail.
#[test]
fn analyzer_frame_estimate_tracks_actual_bytes_within_10_percent() {
    use parjoin_analyze::{estimated_frame_bytes, JoinKind, PlanSpec, ShuffleKind};
    use parjoin_common::hash;
    use parjoin_obs::{Registry, TraceSink};
    use parjoin_runtime::{Router, Runtime, RuntimeConfig, RuntimeObs};
    use std::sync::Arc;
    use std::time::Duration;

    // A two-atom query whose widest atom has arity 2 — matching the
    // relation we shuffle below, as the engine's pre-flight would see it.
    let mut b = QueryBuilder::new("est");
    let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    b.atom("R", [x, y]).atom("S", [y, z]).head([x, z]);
    let query = b.build();

    let workers = 4;
    let batch = 128usize;
    let arity = 2;
    let mut parts: Vec<Relation> = (0..workers).map(|_| Relation::new(arity)).collect();
    // Enough rows that each of the 16 producer->consumer streams runs
    // ~15 batches: the partial tail batch (the only place estimate and
    // actual diverge) stays a small fraction of the total.
    for i in 0..32_000u64 {
        parts[(i % workers as u64) as usize].push_row(&[i * 7 % 997, i * 13 % 991]);
    }
    let router: Router =
        Arc::new(move |_w, row, dests| dests.push(hash::bucket(row[0], 3, workers)));

    for format in [WireFormat::Varint, WireFormat::Vectored] {
        let spec = PlanSpec::new(&query, workers, ShuffleKind::Regular, JoinKind::Hash)
            .with_batch_tuples(batch as u64)
            .with_wire_format(format);
        let per_frame = estimated_frame_bytes(&spec, batch as u64);

        let reg = Registry::new();
        let cfg = RuntimeConfig {
            workers,
            transport: TransportKind::InProcess,
            batch_tuples: batch,
            io_timeout: Duration::from_secs(20),
            wire_format: format,
            obs: RuntimeObs::on_registry(&reg, TraceSink::enabled()),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::new(cfg).expect("runtime");
        let out = rt
            .shuffle(parts.clone(), Arc::clone(&router))
            .expect("shuffle");
        rt.shutdown().expect("shutdown");

        let batches = reg.get("runtime.tx.batches").expect("batch counter");
        let estimate = per_frame * batches;
        let actual = out.bytes_sent;
        let drift = estimate.abs_diff(actual) as f64 / actual as f64;
        assert!(
            drift <= 0.10,
            "{format:?}: estimate {estimate} vs actual {actual} drifts {:.1}% (> 10%)",
            drift * 100.0
        );
        // The estimate is an upper bound: partial tail batches only ever
        // shrink the real frames below a full batch's estimate.
        assert!(
            estimate >= actual,
            "{format:?}: estimate must not undershoot"
        );
    }
}
