//! Probe-phase determinism: every shuffle×join configuration on every
//! paper query produces byte-identical output whether local joins probe
//! sequentially (`sequential_probe`) or through the morsel-parallel
//! probe at 1, 2, or 4 threads (`probe_threads` override — the suite
//! must not depend on how many cores the CI host happens to have).
//!
//! Byte-identical means exactly that: the collected outputs' backing
//! buffers are compared raw, unsorted. The depth-0 leapfrog enumerates
//! morsel value ranges in ascending order and hash-probe morsels scan
//! contiguous row ranges in input order, so concatenating per-morsel
//! buffers in morsel order must reproduce the sequential byte stream —
//! no row may move.

use parjoin::prelude::*;

fn all_configs() -> Vec<(ShuffleAlg, JoinAlg)> {
    vec![
        (ShuffleAlg::Regular, JoinAlg::Hash),
        (ShuffleAlg::Regular, JoinAlg::Tributary),
        (ShuffleAlg::Broadcast, JoinAlg::Hash),
        (ShuffleAlg::Broadcast, JoinAlg::Tributary),
        (ShuffleAlg::HyperCube, JoinAlg::Hash),
        (ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ]
}

/// Runs a config with the probe either forced sequential or forced to
/// `threads` probe threads (bypassing the host-core budget).
fn run_with(
    spec: &QuerySpec,
    db: &Database,
    s: ShuffleAlg,
    j: JoinAlg,
    probe_threads: Option<usize>,
) -> RunResult {
    let cluster = Cluster::new(4).with_seed(11);
    let opts = PlanOptions {
        collect_output: true,
        sequential_probe: probe_threads.is_none(),
        probe_threads,
        ..Default::default()
    };
    run_config(&spec.query, db, &cluster, s, j, &opts).unwrap_or_else(|e| {
        panic!(
            "{} {s:?}/{j:?} (probe_threads={probe_threads:?}): {e}",
            spec.name
        )
    })
}

fn check_query_at(spec: &QuerySpec, scale: Scale) {
    let db = scale.db_for(spec.dataset, 7);
    for (s, j) in all_configs() {
        let baseline = run_with(spec, &db, s, j, None);
        let base_out = baseline.output.as_ref().expect("collected");
        assert_eq!(
            baseline.probe_threads, 1,
            "{} {s:?}/{j:?}: sequential_probe must report one probe thread",
            spec.name
        );
        for t in [1usize, 2, 4] {
            let parallel = run_with(spec, &db, s, j, Some(t));
            let par_out = parallel.output.as_ref().expect("collected");
            assert_eq!(
                base_out.arity(),
                par_out.arity(),
                "{} {s:?}/{j:?} t={t}: arity drifted",
                spec.name
            );
            assert_eq!(
                base_out.raw(),
                par_out.raw(),
                "{} {s:?}/{j:?} t={t}: parallel probe output not byte-identical",
                spec.name
            );
            assert_eq!(
                baseline.output_tuples, parallel.output_tuples,
                "{} {s:?}/{j:?} t={t}: output counts drifted",
                spec.name
            );
            assert_eq!(
                parallel.probe_threads, t as u64,
                "{} {s:?}/{j:?}: probe_threads stat must echo the override",
                spec.name
            );
        }
    }
}

fn check_query(spec: &QuerySpec) {
    check_query_at(spec, Scale::tiny());
}

#[test]
fn q1_triangles_parallel_probe_identical() {
    check_query(&parjoin::datagen::workloads::q1());
}

#[test]
fn q2_cliques_parallel_probe_identical() {
    check_query(&parjoin::datagen::workloads::q2());
}

#[test]
fn q3_cast_members_parallel_probe_identical() {
    check_query(&parjoin::datagen::workloads::q3());
}

#[test]
fn q4_actor_pairs_parallel_probe_identical() {
    // Q4's regular-shuffle plan blows up combinatorially; use the same
    // extra-small catalog as the configs_agree suite.
    let scale = Scale {
        twitter_nodes: 300,
        twitter_m: 3,
        freebase_performances: 250,
    };
    check_query_at(&parjoin::datagen::workloads::q4(), scale);
}

#[test]
fn q5_rectangles_parallel_probe_identical() {
    check_query(&parjoin::datagen::workloads::q5());
}

#[test]
fn q6_two_rings_parallel_probe_identical() {
    check_query(&parjoin::datagen::workloads::q6());
}

#[test]
fn q7_oscar_winners_parallel_probe_identical() {
    check_query(&parjoin::datagen::workloads::q7());
}

#[test]
fn q8_actor_director_parallel_probe_identical() {
    check_query(&parjoin::datagen::workloads::q8());
}

#[test]
fn probe_stats_count_morsels() {
    // Every probe operation counts at least one morsel, sequential or
    // not, so any plan that joins at all reports probe_morsels >= 1.
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().db_for(spec.dataset, 7);
    for (s, j) in all_configs() {
        let r = run_with(&spec, &db, s, j, Some(2));
        assert!(
            r.probe_morsels >= 1,
            "{s:?}/{j:?}: no probe morsels recorded"
        );
        let seq = run_with(&spec, &db, s, j, None);
        assert!(
            seq.probe_morsels >= 1,
            "{s:?}/{j:?}: sequential probe recorded no morsels"
        );
    }
}

#[test]
fn semijoin_plan_parallel_probe_identical() {
    // The GYM semijoin plan has its own probe path (semijoin_parallel);
    // cover it separately from the six run_config plans.
    let spec = parjoin::datagen::workloads::q3();
    let db = Scale::tiny().db_for(spec.dataset, 7);
    let cluster = Cluster::new(4).with_seed(11);
    let base_opts = PlanOptions {
        collect_output: true,
        sequential_probe: true,
        ..Default::default()
    };
    let baseline =
        parjoin::engine::semijoin::run_semijoin_plan(&spec.query, &db, &cluster, &base_opts)
            .expect("semijoin baseline");
    for t in [1usize, 2, 4] {
        let opts = PlanOptions {
            collect_output: true,
            probe_threads: Some(t),
            ..Default::default()
        };
        let parallel =
            parjoin::engine::semijoin::run_semijoin_plan(&spec.query, &db, &cluster, &opts)
                .expect("semijoin parallel");
        assert_eq!(
            baseline.run.output.as_ref().expect("collected").raw(),
            parallel.run.output.as_ref().expect("collected").raw(),
            "semijoin t={t}: output not byte-identical"
        );
    }
}
