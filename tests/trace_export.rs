//! End-to-end checks of the observability layer: a traced run must emit
//! a chrome://tracing-loadable JSON file with one span per phase per
//! worker lane, the metrics registry snapshot on [`RunResult::metrics`]
//! must reconcile *exactly* with the legacy ad-hoc counters
//! (`bytes_shuffled`, `sort_cache_hits`, …), and [`RunResult::report`]
//! must render the phase/worker tables these metrics feed.

use parjoin::obs::json::summarize_chrome_trace;
use parjoin::obs::COORDINATOR_LANE;
use parjoin::prelude::*;

fn traced_run(dir: &std::path::Path, transport: TransportKind) -> (RunResult, String) {
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().twitter_db(7);
    let cluster = Cluster::new(4).with_seed(7).with_transport(transport);
    let path = dir.join(format!("trace-{transport:?}.json"));
    let opts = PlanOptions {
        trace_path: Some(path.clone()),
        ..Default::default()
    };
    let r = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &opts,
    )
    .expect("traced Q1 HC_TJ runs");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    (r, text)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("parjoin-trace-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn trace_has_one_span_per_phase_per_worker() {
    let dir = tmp_dir("spans");
    let (r, text) = traced_run(&dir, TransportKind::InProcess);
    let s = summarize_chrome_trace(&text).expect("trace parses as a chrome trace");
    for w in 0..4u64 {
        // One `shuffle` span per exchange (Q1 under HyperCube has one
        // per atom), and exactly one of each engine phase span.
        assert_eq!(s.count("shuffle", w), r.shuffles.len() as u64);
        for phase in ["local-join", "prepare", "probe"] {
            assert_eq!(s.count(phase, w), 1, "worker {w} span count for `{phase}`");
        }
    }
    assert_eq!(s.count("output", u64::from(COORDINATOR_LANE)), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn local_transport_still_traces_engine_phases() {
    // No runtime exchange under the Local transport: no `shuffle` spans,
    // but the engine phases must still be there.
    let dir = tmp_dir("local");
    let (_, text) = traced_run(&dir, TransportKind::Local);
    let s = summarize_chrome_trace(&text).expect("trace parses");
    assert!(s.lanes_with("shuffle").is_empty(), "no runtime spans");
    for w in 0..4u64 {
        assert_eq!(s.count("local-join", w), 1);
        assert_eq!(s.count("prepare", w), 1);
        assert_eq!(s.count("probe", w), 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_reconciles_with_legacy_counters() {
    let dir = tmp_dir("metrics");
    let (r, _) = traced_run(&dir, TransportKind::InProcess);
    // Engine mirrors.
    assert_eq!(
        r.metric(metric_names::TUPLES_SHUFFLED),
        Some(r.tuples_shuffled)
    );
    assert_eq!(
        r.metric(metric_names::BYTES_SHUFFLED),
        Some(r.bytes_shuffled)
    );
    assert_eq!(r.metric(metric_names::OUTPUT_TUPLES), Some(r.output_tuples));
    assert_eq!(
        r.metric(metric_names::SORT_CACHE_HITS),
        Some(r.sort_cache_hits)
    );
    assert_eq!(
        r.metric(metric_names::SORT_CACHE_MISSES),
        Some(r.sort_cache_misses)
    );
    assert_eq!(r.metric(metric_names::PROBE_MORSELS), Some(r.probe_morsels));
    // The runtime counted the same bytes the engine tallied.
    assert_eq!(r.metric("runtime.tx.bytes"), Some(r.bytes_shuffled));
    assert_eq!(r.metric("runtime.rx.bytes"), Some(r.bytes_shuffled));
    assert_eq!(r.metric("runtime.rx.decode_errors"), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn untraced_runs_have_metrics_but_no_trace() {
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().twitter_db(7);
    let cluster = Cluster::new(4).with_seed(7);
    let r = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &PlanOptions::default(),
    )
    .expect("untraced run");
    assert!(!r.metrics.is_empty(), "registry snapshot rides along");
    assert_eq!(r.metric(metric_names::OUTPUT_TUPLES), Some(r.output_tuples));
    // Local transport: no runtime, so runtime metrics are absent.
    assert_eq!(r.metric("runtime.tx.bytes"), None);
}

#[test]
fn report_renders_phase_and_worker_tables() {
    let dir = tmp_dir("report");
    let (r, _) = traced_run(&dir, TransportKind::InProcess);
    let report = r.report();
    for needle in [
        "== HC_TJ ==",
        "phase",
        "network",
        "sort(prep)",
        "join(probe)",
        "load skew (max/mean busy)",
        "engine.bytes.shuffled",
        "runtime.tx.bytes",
    ] {
        assert!(
            report.contains(needle),
            "report missing `{needle}`:\n{report}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
