//! Memory-budget failure injection — the mechanism behind the paper's
//! Figure 9 `RS_TJ: FAIL` cell for Q4.

use parjoin::prelude::*;

#[test]
fn tight_budget_fails_rs_tj_first() {
    // RS_TJ charges sort buffers (2× inputs) on top of the join output,
    // so there exists a budget band where RS_TJ fails and HC_TJ survives.
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().twitter_db(2);
    let opts = PlanOptions::default();

    // Find what each plan actually needs.
    let need = |s: ShuffleAlg, j: JoinAlg| -> u64 {
        run_config(&spec.query, &db, &Cluster::new(4), s, j, &opts)
            .unwrap()
            .peak_worker_tuples
    };
    let rs_tj = need(ShuffleAlg::Regular, JoinAlg::Tributary);
    let hc_tj = need(ShuffleAlg::HyperCube, JoinAlg::Tributary);
    assert!(
        hc_tj < rs_tj,
        "HC_TJ should need less per-worker memory ({hc_tj} vs {rs_tj})"
    );

    let budget = (hc_tj + rs_tj) / 2;
    let cluster = Cluster::new(4).with_memory_budget(budget);
    let err = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Regular,
        JoinAlg::Tributary,
        &opts,
    )
    .unwrap_err();
    assert!(matches!(err, EngineError::MemoryBudget { .. }), "{err}");

    // HC_TJ under the same budget succeeds.
    run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &opts,
    )
    .expect("HC_TJ fits where RS_TJ failed");
}

#[test]
fn budget_error_reports_numbers() {
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().twitter_db(2);
    let cluster = Cluster::new(2).with_memory_budget(1);
    let err = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &PlanOptions::default(),
    )
    .unwrap_err();
    match err {
        EngineError::MemoryBudget { needed, budget, .. } => {
            assert_eq!(budget, 1);
            assert!(needed > 1);
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn generous_budget_never_fails() {
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().twitter_db(2);
    let cluster = Cluster::new(4).with_memory_budget(u64::MAX);
    for (s, j) in [
        (ShuffleAlg::Regular, JoinAlg::Hash),
        (ShuffleAlg::Regular, JoinAlg::Tributary),
        (ShuffleAlg::Broadcast, JoinAlg::Hash),
        (ShuffleAlg::Broadcast, JoinAlg::Tributary),
        (ShuffleAlg::HyperCube, JoinAlg::Hash),
        (ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ] {
        run_config(&spec.query, &db, &cluster, s, j, &PlanOptions::default())
            .unwrap_or_else(|e| panic!("{s:?}/{j:?}: {e}"));
    }
}

#[test]
fn missing_relation_is_resolve_error() {
    let q = parjoin::query::parser::parse("Q(x) :- Nonexistent(x, x)").unwrap();
    let db = Database::new();
    let err = run_config(
        &q,
        &db,
        &Cluster::new(2),
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &PlanOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, EngineError::Resolve(_)));
}
