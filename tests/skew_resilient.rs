//! The heavy-hitter-resilient regular shuffle (paper footnote 2) must
//! preserve results while flattening the intermediate-result skew.

use parjoin::prelude::*;

fn rows(r: &RunResult) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = r
        .output
        .as_ref()
        .unwrap()
        .rows()
        .map(|x| x.to_vec())
        .collect();
    rows.sort();
    rows
}

#[test]
fn same_results_with_and_without_skew_handling() {
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::tiny().twitter_db(4);
    let cluster = Cluster::new(8).with_seed(2);
    let base = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &PlanOptions {
            collect_output: true,
            ..Default::default()
        },
    )
    .unwrap();
    let resilient = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &PlanOptions {
            collect_output: true,
            skew_resilient: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(rows(&base), rows(&resilient));
}

#[test]
fn skew_handling_flattens_hot_keys() {
    // The celebrity-laden graph gives the Q1 intermediate a heavy
    // producer skew under plain hashing; the resilient shuffle must cut
    // the *max received* load of the first join's inputs.
    let spec = parjoin::datagen::workloads::q1();
    let db = Scale::small().twitter_db(42);
    let cluster = Cluster::new(64).with_seed(42);
    let base = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &PlanOptions::default(),
    )
    .unwrap();
    let resilient = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &PlanOptions {
            skew_resilient: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(base.output_tuples, resilient.output_tuples);

    // The intermediate shuffle (index 2) is the skewed one in Q1.
    let base_peak = *base.shuffles[2].per_producer.iter().max().unwrap();
    let res_peak = *resilient.shuffles[2].per_producer.iter().max().unwrap();
    assert!(
        (res_peak as f64) < 0.6 * base_peak as f64,
        "hot-key spreading must cut the peak producer: {res_peak} vs {base_peak}"
    );
    // And the straggler improves end to end.
    assert!(
        resilient.wall < base.wall,
        "wall {:?} should beat {:?}",
        resilient.wall,
        base.wall
    );
}

#[test]
fn all_queries_agree_under_skew_handling() {
    let scale = Scale {
        twitter_nodes: 300,
        twitter_m: 3,
        freebase_performances: 250,
    };
    for spec in all_queries() {
        let db = scale.db_for(spec.dataset, 7);
        let cluster = Cluster::new(4).with_seed(7);
        let opts = |sr| PlanOptions {
            collect_output: true,
            skew_resilient: sr,
            ..Default::default()
        };
        for j in [JoinAlg::Hash, JoinAlg::Tributary] {
            let a = run_config(
                &spec.query,
                &db,
                &cluster,
                ShuffleAlg::Regular,
                j,
                &opts(false),
            )
            .unwrap();
            let b = run_config(
                &spec.query,
                &db,
                &cluster,
                ShuffleAlg::Regular,
                j,
                &opts(true),
            )
            .unwrap();
            assert_eq!(rows(&a), rows(&b), "{} {:?}", spec.name, j);
        }
    }
}
