//! Multi-process correctness: the `parjoin-coordinator` /
//! `parjoin-worker` binaries, running as separate OS processes over
//! loopback TCP, must produce output byte-identical to the in-process
//! `Transport::Local` engine (the coordinator's `--check-local` mode
//! makes the comparison and exits nonzero on any divergence or
//! unreconciled metric).

use std::process::Command;

fn coordinator() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parjoin-coordinator"))
}

fn run_ok(cmd: &mut Command) {
    let out = cmd.output().expect("run coordinator");
    assert!(
        out.status.success(),
        "coordinator failed ({}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

/// The CI smoke shape: one coordinator, three spawned workers, Q1 on
/// HyperCube+Tributary, checked byte-for-byte against Local.
#[test]
fn smoke_three_workers_q1() {
    run_ok(coordinator().args([
        "--spawn-workers",
        "3",
        "--queries",
        "Q1",
        "--configs",
        "HC_TJ",
        "--check-local",
    ]));
}

/// The acceptance sweep: every Twitter-dataset paper query under all
/// six shuffle×join configurations, four worker processes, each run
/// compared byte-for-byte against the Local transport with exact
/// runtime.tx/rx reconciliation (one persistent worker session serves
/// all 42 fragments).
#[test]
fn all_twitter_queries_all_configs_match_local() {
    run_ok(coordinator().args([
        "--spawn-workers",
        "4",
        "--queries",
        "Q1,Q2,Q5,Q6",
        "--configs",
        "all",
        "--check-local",
    ]));
}

/// Freebase-dataset queries (Q3 projects and needs `--distinct` for the
/// paper's set semantics; Q4/Q7/Q8 join the catalog shapes) at a
/// trimmed Freebase scale so the full config sweep stays test-sized.
#[test]
fn all_freebase_queries_all_configs_match_local() {
    run_ok(coordinator().args([
        "--spawn-workers",
        "4",
        "--queries",
        "Q3,Q4,Q7,Q8",
        "--configs",
        "all",
        "--freebase",
        "500",
        "--check-local",
        "--distinct",
    ]));
}
