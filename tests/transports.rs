//! Cross-transport correctness: every shuffle×join configuration on
//! every paper query produces byte-identical output whether shuffles run
//! on the sequential Local path, the InProcess streaming transport, or
//! (behind `transport-tcp`) loopback TCP — and the streaming transports
//! report real byte tallies with unchanged tuple counts.
//!
//! Byte-identical means exactly that: the collected output's backing
//! buffers are compared raw, unsorted. The streaming exchange
//! accumulates batches per source and concatenates sources in ascending
//! order, so it reproduces the Local loop's row order, not merely its
//! multiset.

use parjoin::prelude::*;

fn transports() -> Vec<TransportKind> {
    let mut t = vec![TransportKind::Local, TransportKind::InProcess];
    if cfg!(feature = "transport-tcp") {
        t.push(TransportKind::Tcp);
    }
    t
}

fn all_configs() -> Vec<(ShuffleAlg, JoinAlg)> {
    vec![
        (ShuffleAlg::Regular, JoinAlg::Hash),
        (ShuffleAlg::Regular, JoinAlg::Tributary),
        (ShuffleAlg::Broadcast, JoinAlg::Hash),
        (ShuffleAlg::Broadcast, JoinAlg::Tributary),
        (ShuffleAlg::HyperCube, JoinAlg::Hash),
        (ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ]
}

fn run_under(
    spec: &QuerySpec,
    db: &Database,
    s: ShuffleAlg,
    j: JoinAlg,
    transport: TransportKind,
) -> RunResult {
    // A small batch size forces multi-batch streams even at tiny scale,
    // exercising the flush path, not just the final partial batch.
    let cluster = Cluster::new(4)
        .with_seed(11)
        .with_transport(transport)
        .with_batch_tuples(512);
    let opts = PlanOptions {
        collect_output: true,
        ..Default::default()
    };
    run_config(&spec.query, db, &cluster, s, j, &opts)
        .unwrap_or_else(|e| panic!("{} {s:?}/{j:?} on {transport}: {e}", spec.name))
}

fn check_query_at(spec: &QuerySpec, scale: Scale) {
    let db = scale.db_for(spec.dataset, 7);
    for (s, j) in all_configs() {
        let local = run_under(spec, &db, s, j, TransportKind::Local);
        let local_out = local.output.as_ref().expect("collected");
        assert_eq!(local.bytes_shuffled, 0, "{} {s:?}/{j:?}", spec.name);
        for transport in transports().into_iter().skip(1) {
            let streamed = run_under(spec, &db, s, j, transport);
            let streamed_out = streamed.output.as_ref().expect("collected");
            assert_eq!(
                local_out.arity(),
                streamed_out.arity(),
                "{} {s:?}/{j:?} on {transport}: arity drifted",
                spec.name
            );
            assert_eq!(
                local_out.raw(),
                streamed_out.raw(),
                "{} {s:?}/{j:?} on {transport}: output not byte-identical",
                spec.name
            );
            assert_eq!(
                local.tuples_shuffled, streamed.tuples_shuffled,
                "{} {s:?}/{j:?} on {transport}: tuple tallies drifted",
                spec.name
            );
            if streamed.tuples_shuffled > 0 {
                assert!(
                    streamed.bytes_shuffled > 0,
                    "{} {s:?}/{j:?} on {transport}: streaming moved tuples but no bytes",
                    spec.name
                );
            }
        }
    }
}

fn check_query(spec: &QuerySpec) {
    check_query_at(spec, Scale::tiny());
}

/// Per-shuffle stats must agree across transports — same labels, same
/// per-producer and per-consumer tallies — with bytes the only
/// difference; InProcess and Tcp must agree on bytes too (framing is
/// excluded from the count).
fn check_stats(spec: &QuerySpec) {
    let db = Scale::tiny().db_for(spec.dataset, 7);
    for (s, j) in all_configs() {
        let runs: Vec<RunResult> = transports()
            .into_iter()
            .map(|t| run_under(spec, &db, s, j, t))
            .collect();
        let local = &runs[0];
        for streamed in &runs[1..] {
            assert_eq!(local.shuffles.len(), streamed.shuffles.len());
            for (a, b) in local.shuffles.iter().zip(&streamed.shuffles) {
                assert_eq!(a.label, b.label, "{} {s:?}/{j:?}", spec.name);
                assert_eq!(a.per_producer, b.per_producer, "{}: {}", spec.name, a.label);
                assert_eq!(a.per_consumer, b.per_consumer, "{}: {}", spec.name, a.label);
                assert_eq!(a.bytes_sent, 0, "{}: local moves no bytes", spec.name);
                assert_eq!(
                    b.bytes_sent, b.bytes_received,
                    "{}: every sent byte is received",
                    spec.name
                );
            }
        }
        // InProcess and Tcp count identical bytes.
        if runs.len() > 2 {
            for (a, b) in runs[1].shuffles.iter().zip(&runs[2].shuffles) {
                assert_eq!(
                    a.bytes_sent, b.bytes_sent,
                    "{}: InProcess and Tcp disagree on {}",
                    spec.name, a.label
                );
            }
        }
    }
}

#[test]
fn q1_triangles_all_transports() {
    check_query(&parjoin::datagen::workloads::q1());
}

#[test]
fn q2_cliques_all_transports() {
    check_query(&parjoin::datagen::workloads::q2());
}

#[test]
fn q3_cast_members_all_transports() {
    check_query(&parjoin::datagen::workloads::q3());
}

#[test]
fn q4_actor_pairs_all_transports() {
    // Q4's regular-shuffle plan blows up combinatorially; use the same
    // extra-small catalog as the configs_agree suite.
    let scale = Scale {
        twitter_nodes: 300,
        twitter_m: 3,
        freebase_performances: 250,
    };
    check_query_at(&parjoin::datagen::workloads::q4(), scale);
}

#[test]
fn q5_rectangles_all_transports() {
    check_query(&parjoin::datagen::workloads::q5());
}

#[test]
fn q6_two_rings_all_transports() {
    check_query(&parjoin::datagen::workloads::q6());
}

#[test]
fn q7_oscar_winners_all_transports() {
    check_query(&parjoin::datagen::workloads::q7());
}

#[test]
fn q8_actor_director_all_transports() {
    check_query(&parjoin::datagen::workloads::q8());
}

#[test]
fn q1_stats_agree_across_transports() {
    check_stats(&parjoin::datagen::workloads::q1());
}

#[test]
fn q2_stats_agree_across_transports() {
    check_stats(&parjoin::datagen::workloads::q2());
}

#[test]
fn q3_stats_agree_across_transports() {
    check_stats(&parjoin::datagen::workloads::q3());
}
