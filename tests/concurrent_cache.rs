//! Concurrent `run_config` calls sharing the ONE process-wide SortCache.
//!
//! N threads run the mixed Q1–Q8 workload through the cache-touching
//! Tributary configurations (BR_TJ, HC_TJ) simultaneously, each thread
//! starting at a different offset so they collide on the same cache
//! keys mid-flight. The contract under contention:
//!
//! * every concurrent run is byte-identical to a sequential
//!   (`sequential_prepare`, cache-bypassing) baseline;
//! * no lock is poisoned — every thread joins cleanly and the cache
//!   keeps serving afterwards;
//! * the per-run hit/miss/certified counters on [`RunResult`] reconcile
//!   *exactly* with the global [`SortCache`] statistics delta: each
//!   lookup is classified once, locally and globally alike;
//! * the same exact reconciliation holds for the [`TrieCache`] layered
//!   on top (the default columnar layout consults both: sorted view
//!   first, prepared trie second);
//! * the eviction-pressure metrics (evictions during run, resident
//!   bytes at finish) are populated.
//!
//! This file holds a single `#[test]` on purpose: integration-test
//! binaries run per-process, so nothing else mutates the global caches
//! while the before/after statistics are compared.

use parjoin::engine::SortCache;
use parjoin::prelude::*;
use std::thread;

/// The two configurations whose Tributary prepare phase consults the
/// sort cache (Regular-shuffle TJ re-sorts per round and bypasses it).
fn cache_configs() -> [(ShuffleAlg, JoinAlg); 2] {
    [
        (ShuffleAlg::Broadcast, JoinAlg::Tributary),
        (ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ]
}

struct Baseline {
    name: String,
    arity: usize,
    raw: Vec<u64>,
    output_tuples: u64,
}

#[test]
fn concurrent_mixed_runs_share_cache_and_counters_reconcile() {
    let cache = SortCache::global();
    let tries = TrieCache::global();
    let scale = Scale::tiny();
    let cluster = Cluster::new(4).with_seed(11);

    // One (query, db) pair per workload query; clones of `db` later are
    // cheap Arc bumps, the relation storage is shared.
    let work: Vec<(QuerySpec, Database)> = all_queries()
        .into_iter()
        .map(|spec| {
            let db = scale.db_for(spec.dataset, 7);
            (spec, db)
        })
        .collect();
    let n_units = work.len() * cache_configs().len();

    // Sequential baselines: cache bypassed, so these are independent of
    // anything the concurrent phase does.
    let seq_opts = PlanOptions {
        collect_output: true,
        certify: true,
        sequential_prepare: true,
        ..Default::default()
    };
    let mut baselines: Vec<Baseline> = Vec::with_capacity(n_units);
    for (spec, db) in &work {
        for (s, j) in cache_configs() {
            let r = run_config(&spec.query, db, &cluster, s, j, &seq_opts)
                .unwrap_or_else(|e| panic!("{} {s:?}/{j:?} baseline: {e}", spec.name));
            assert_eq!(
                (r.sort_cache_hits, r.sort_cache_misses),
                (0, 0),
                "{}: sequential_prepare must bypass the cache",
                spec.name
            );
            assert_eq!(
                (r.trie_cache_hits, r.trie_cache_misses),
                (0, 0),
                "{}: sequential_prepare must bypass the trie cache too",
                spec.name
            );
            let out = r.output.as_ref().expect("collected");
            baselines.push(Baseline {
                name: spec.name.to_string(),
                arity: out.arity(),
                raw: out.raw().to_vec(),
                output_tuples: r.output_tuples,
            });
        }
    }

    let before = cache.stats();
    let trie_before = tries.stats();

    // Concurrent phase: each thread runs every (query, config) unit
    // once, starting `t` units into the rotation so different threads
    // hit the same keys at different times.
    const THREADS: usize = 4;
    let opts = PlanOptions {
        collect_output: true,
        certify: true,
        ..Default::default()
    };
    let per_thread: Vec<Vec<(usize, RunResult)>> = thread::scope(|sc| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let work = &work;
                let cluster = &cluster;
                let opts = &opts;
                sc.spawn(move || {
                    let mut out = Vec::with_capacity(n_units);
                    for i in 0..n_units {
                        let unit = (i + t * 3) % n_units;
                        let (spec, db) = &work[unit / cache_configs().len()];
                        let (s, j) = cache_configs()[unit % cache_configs().len()];
                        let r = run_config(&spec.query, db, cluster, s, j, opts)
                            .unwrap_or_else(|e| panic!("{} {s:?}/{j:?}: {e}", spec.name));
                        out.push((unit, r));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread panicked — a lock was poisoned?"))
            .collect()
    });

    let after = cache.stats();
    let trie_after = tries.stats();

    // Byte identity: all THREADS × n_units concurrent runs against the
    // sequential baselines.
    let (mut hits, mut misses, mut certified) = (0u64, 0u64, 0u64);
    let (mut t_hits, mut t_misses, mut t_certified) = (0u64, 0u64, 0u64);
    for runs in &per_thread {
        for (unit, r) in runs {
            let base = &baselines[*unit];
            let out = r.output.as_ref().expect("collected");
            assert_eq!(out.arity(), base.arity, "{}: arity drifted", base.name);
            assert_eq!(
                out.raw(),
                &base.raw[..],
                "{}: concurrent run not byte-identical to sequential baseline",
                base.name
            );
            assert_eq!(
                r.output_tuples, base.output_tuples,
                "{}: output count drifted",
                base.name
            );
            assert!(
                r.sort_cache_hits + r.sort_cache_misses > 0,
                "{}: TJ prepare recorded no cache lookups",
                base.name
            );
            assert!(
                r.sort_cache_certified_hits <= r.sort_cache_hits,
                "{}: certified hits exceed hits",
                base.name
            );
            hits += r.sort_cache_hits;
            misses += r.sort_cache_misses;
            certified += r.sort_cache_certified_hits;
            assert!(
                r.trie_cache_hits + r.trie_cache_misses > 0,
                "{}: columnar TJ prepare recorded no trie-cache lookups",
                base.name
            );
            assert!(
                r.trie_cache_certified_hits <= r.trie_cache_hits,
                "{}: certified trie hits exceed trie hits",
                base.name
            );
            t_hits += r.trie_cache_hits;
            t_misses += r.trie_cache_misses;
            t_certified += r.trie_cache_certified_hits;
        }
    }

    // Exact reconciliation: every lookup the runs reported is one the
    // global cache counted, and vice versa.
    assert_eq!(after.hits - before.hits, hits, "hit counters diverged");
    assert_eq!(
        after.misses - before.misses,
        misses,
        "miss counters diverged"
    );
    assert_eq!(
        after.certified_hits - before.certified_hits,
        certified,
        "certified-hit counters diverged"
    );
    assert!(
        certified > 0,
        "repeated identical queries under certify mode must produce certified hits"
    );

    // The TrieCache layered on top reconciles just as exactly.
    assert_eq!(
        trie_after.hits - trie_before.hits,
        t_hits,
        "trie hit counters diverged"
    );
    assert_eq!(
        trie_after.misses - trie_before.misses,
        t_misses,
        "trie miss counters diverged"
    );
    assert_eq!(
        trie_after.certified_hits - trie_before.certified_hits,
        t_certified,
        "certified trie-hit counters diverged"
    );
    assert!(
        t_certified > 0,
        "repeated identical queries must produce certified trie hits"
    );
    assert_eq!(trie_after.evictions - trie_before.evictions, 0);
    assert!(
        trie_after.resident_bytes > 0,
        "no prepared tries resident after a columnar workload"
    );

    // Eviction-pressure metrics are wired: tiny data never overflows the
    // default budget, so no evictions — but resident bytes must show the
    // cached sorted views.
    assert_eq!(after.evictions - before.evictions, 0);
    assert!(after.resident_bytes > 0, "no sorted views resident");

    // The cache is still healthy after the contention: a fresh repeat
    // run is served (certified) from cache, on the main thread.
    let (spec, db) = &work[0];
    let (s, j) = cache_configs()[0];
    let again = run_config(&spec.query, db, &cluster, s, j, &opts).expect("post-contention run");
    assert!(
        again.sort_cache_hits > 0 && again.sort_cache_misses == 0,
        "warm cache must serve a repeat of {} entirely from cache",
        spec.name
    );
    assert_eq!(again.sort_cache_certified_hits, again.sort_cache_hits);
    assert!(
        again.sort_cache_resident_bytes > 0,
        "resident-bytes gauge not populated on RunResult"
    );
    assert!(
        again.trie_cache_hits > 0 && again.trie_cache_misses == 0,
        "warm trie cache must serve a repeat of {} without rebuilding",
        spec.name
    );
    assert_eq!(again.trie_cache_certified_hits, again.trie_cache_hits);
    assert!(
        again.trie_cache_resident_bytes > 0,
        "trie resident-bytes gauge not populated on RunResult"
    );
}
